package engine_test

import (
	"fmt"
	"reflect"
	"testing"

	"dynp/internal/engine"
	"dynp/internal/job"
)

// trackingDriver is a Driver that also implements engine.QueueTracker,
// recording every notification it receives.
type trackingDriver struct {
	engine.Driver
	log []string
}

func (d *trackingDriver) NoteSubmit(j *job.Job) { d.log = append(d.log, fmt.Sprintf("+%d", j.ID)) }
func (d *trackingDriver) NoteRemove(j *job.Job) { d.log = append(d.log, fmt.Sprintf("-%d", j.ID)) }

func TestQueueTrackerNotifications(t *testing.T) {
	d := &trackingDriver{Driver: fcfs()}
	e := engine.New(4, d, 0)

	// Submissions notify in order.
	e.Submit(mkJob(1, 0, 4, 100))
	e.Submit(mkJob(2, 0, 2, 50))
	e.Submit(mkJob(3, 0, 2, 30))

	// Cancel notifies a removal.
	if !e.CancelWaiting(3) {
		t.Fatal("cancel failed")
	}

	// Launch notifies a removal for every started job: job 1 occupies the
	// whole machine, job 2 stays queued.
	if err := e.Replan(); err != nil {
		t.Fatal(err)
	}
	want := []string{"+1", "+2", "+3", "-3", "-1"}
	if !reflect.DeepEqual(d.log, want) {
		t.Fatalf("notification log %v, want %v", d.log, want)
	}

	// Finishing a running job is not a queue change; the follow-up replan
	// launches job 2 and notifies that removal only.
	e.JumpTo(100)
	e.Finish(1, engine.FinishCompleted)
	if err := e.Replan(); err != nil {
		t.Fatal(err)
	}
	want = append(want, "-2")
	if !reflect.DeepEqual(d.log, want) {
		t.Fatalf("notification log %v, want %v", d.log, want)
	}
}

// TestQueueTrackerOptional: a driver without the interface works untouched.
func TestQueueTrackerOptional(t *testing.T) {
	e := engine.New(4, fcfs(), 0)
	e.Submit(mkJob(1, 0, 1, 10))
	if err := e.Replan(); err != nil {
		t.Fatal(err)
	}
	if !e.IsRunning(1) {
		t.Fatal("job did not start")
	}
}
