package engine

// White-box tests: corrupt the engine's internal state directly and
// check that CheckInvariants catches each class of damage. The rms
// package used to carry these against its own bookkeeping; with the
// state moved here, the corruption coverage moves with it.

import (
	"strings"
	"testing"

	"dynp/internal/job"
	"dynp/internal/plan"
)

// seeded returns an engine with two running jobs (widths 2 and 1) and
// one waiting job, built by hand so the tests do not depend on a driver.
func seeded() *Engine {
	e := New(4, nil, 0)
	for i, w := range []int{2, 1} {
		j := &job.Job{ID: job.ID(i + 1), Width: w, Estimate: 100, Runtime: 100}
		e.runningIdx[j.ID] = len(e.running)
		e.running = append(e.running, plan.Running{Job: j, Start: 0})
		e.used += w
	}
	e.Submit(&job.Job{ID: 3, Width: 4, Estimate: 50, Runtime: 50})
	return e
}

func TestCheckInvariantsHealthy(t *testing.T) {
	if err := seeded().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(e *Engine)
		want    string
	}{
		{"negative failed", func(e *Engine) { e.failed = -1 }, "failed processors"},
		{"failed beyond capacity", func(e *Engine) { e.failed = 5 }, "failed processors"},
		{"waiting index dropped", func(e *Engine) { delete(e.waitingIdx, 3) }, "waiting index"},
		{"waiting index stale", func(e *Engine) { e.waitingIdx[3] = 7 }, "indexed at"},
		{"running index dropped", func(e *Engine) { delete(e.runningIdx, 1) }, "running index"},
		{"running index swapped", func(e *Engine) { e.runningIdx[1], e.runningIdx[2] = 1, 0 }, "indexed at"},
		{"used count drifted", func(e *Engine) { e.used = 1 }, "recorded in use"},
		{"oversubscribed", func(e *Engine) { e.failed = 3 }, "exceed effective capacity"},
		{"duplicate running entry", func(e *Engine) {
			e.running = append(e.running, e.running[0])
			e.runningIdx[e.running[0].Job.ID] = 2
		}, "running index"},
		{"waiting and running", func(e *Engine) {
			j := e.running[1].Job
			e.waitingIdx[j.ID] = len(e.waiting)
			e.waiting = append(e.waiting, j)
		}, "both waiting and running"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := seeded()
			tc.corrupt(e)
			err := e.CheckInvariants()
			if err == nil {
				t.Fatalf("%s not detected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRemoveWaitingPreservesOrderAndIndex(t *testing.T) {
	e := New(8, nil, 0)
	for i := 1; i <= 5; i++ {
		e.Submit(&job.Job{ID: job.ID(i), Width: 1, Estimate: 10, Runtime: 10})
	}
	if _, ok := e.removeWaiting(3); !ok {
		t.Fatal("middle removal failed")
	}
	if _, ok := e.removeWaiting(1); !ok {
		t.Fatal("front removal failed")
	}
	want := []job.ID{2, 4, 5}
	if len(e.waiting) != len(want) {
		t.Fatalf("queue length %d, want %d", len(e.waiting), len(want))
	}
	for i, id := range want {
		if e.waiting[i].ID != id {
			t.Fatalf("queue[%d] = %d, want %d (submission order lost)", i, e.waiting[i].ID, id)
		}
		if e.waitingIdx[id] != i {
			t.Fatalf("index[%d] = %d, want %d", id, e.waitingIdx[id], i)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFinishPreservesStartOrderAndIndex(t *testing.T) {
	e := New(8, nil, 0)
	for i := 1; i <= 4; i++ {
		j := &job.Job{ID: job.ID(i), Width: 1, Estimate: 100, Runtime: 100}
		e.runningIdx[j.ID] = len(e.running)
		e.running = append(e.running, plan.Running{Job: j, Start: int64(i)})
		e.used++
	}
	if !e.Finish(2, FinishCompleted) {
		t.Fatal("finish failed")
	}
	want := []job.ID{1, 3, 4}
	for i, id := range want {
		if e.running[i].Job.ID != id {
			t.Fatalf("running[%d] = %d, want %d (start order lost)", i, e.running[i].Job.ID, id)
		}
		if e.runningIdx[id] != i {
			t.Fatalf("index[%d] = %d, want %d", id, e.runningIdx[id], i)
		}
	}
	if e.used != 3 {
		t.Fatalf("used = %d, want 3", e.used)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
