package plan

import (
	"fmt"
	"testing"

	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/rng"
)

// BenchmarkBuild measures full-schedule construction at several queue
// depths — the dominant cost of a self-tuning step (three builds per
// scheduling event).
func BenchmarkBuild(b *testing.B) {
	for _, queued := range []int{16, 128, 1024} {
		for _, p := range policy.Candidates {
			b.Run(fmt.Sprintf("queue%d/%s", queued, p), func(b *testing.B) {
				r := rng.New(7)
				waiting := make([]*job.Job, queued)
				for i := range waiting {
					est := int64(1 + r.Intn(20000))
					waiting[i] = &job.Job{
						ID: job.ID(i + 1), Submit: int64(r.Intn(1000)),
						Width: 1 + r.Intn(128), Estimate: est, Runtime: est,
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					Build(1000, 128, nil, waiting, p)
				}
			})
		}
	}
}

// BenchmarkBuildBaseReuse contrasts the two ways of building the what-if
// schedules of one self-tuning step when running jobs occupy the machine:
// rebuilding the availability profile from scratch per candidate (the old
// Build path) against building the base once and cloning it per candidate
// (the BuildBase/BuildFrom path the tuner uses).
func BenchmarkBuildBaseReuse(b *testing.B) {
	const capacity = 1024
	for _, nRunning := range []int{64, 256} {
		for _, queued := range []int{16, 256} {
			r := rng.New(9)
			running := make([]Running, nRunning)
			for i := range running {
				running[i] = Running{
					Job: &job.Job{
						ID: job.ID(i + 1), Submit: 0,
						Width: 1 + r.Intn(3), Estimate: int64(1000 + r.Intn(20000)),
					},
					Start: 0,
				}
			}
			waiting := make([]*job.Job, queued)
			for i := range waiting {
				est := int64(1 + r.Intn(20000))
				waiting[i] = &job.Job{
					ID: job.ID(nRunning + i + 1), Submit: int64(r.Intn(1000)),
					Width: 1 + r.Intn(128), Estimate: est, Runtime: est,
				}
			}
			name := fmt.Sprintf("running%d/queue%d", nRunning, queued)
			b.Run(name+"/rebuild", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, p := range policy.Candidates {
						Build(1000, capacity, running, waiting, p)
					}
				}
			})
			b.Run(name+"/shared-base", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					base := BuildBase(1000, capacity, running)
					for _, p := range policy.Candidates {
						BuildFrom(base, waiting, p)
					}
				}
			})
		}
	}
}

// BenchmarkBuildFromPooled contrasts the pooled and unpooled candidate
// build at a running-job-heavy event, with allocation reporting — the
// headline measurement of the allocation-lean planning path. Each
// iteration builds one full candidate set (the work of one self-tuning
// step) and releases what a tuner would release.
func BenchmarkBuildFromPooled(b *testing.B) {
	const capacity = 128
	for _, queued := range []int{64, 256, 1024} {
		running, waiting := randomState(5, capacity, 32, queued)
		name := fmt.Sprintf("queue%d", queued)
		b.Run(name+"/unpooled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				base := BuildBase(1000, capacity, running)
				for _, p := range policy.Candidates {
					s := BuildFrom(base, waiting, p)
					s.PlannedSLDwA()
				}
			}
		})
		b.Run(name+"/pooled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				base := BuildBasePooled(1000, capacity, running)
				for _, p := range policy.Candidates {
					s := BuildFromPooled(base, waiting, p)
					s.PlannedSLDwA()
					s.Release()
				}
				base.Release()
			}
		})
		b.Run(name+"/pooled-ordered", func(b *testing.B) {
			orders := make([][]*job.Job, len(policy.Candidates))
			for i, p := range policy.Candidates {
				orders[i] = policy.Order(p, waiting)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				base := BuildBasePooled(1000, capacity, running)
				for k, p := range policy.Candidates {
					s := BuildFromOrdered(base, orders[k], p)
					s.PlannedSLDwA()
					s.Release()
				}
				base.Release()
			}
		})
	}
}

// BenchmarkPlannedSLDwA measures schedule scoring.
func BenchmarkPlannedSLDwA(b *testing.B) {
	r := rng.New(8)
	waiting := make([]*job.Job, 512)
	for i := range waiting {
		est := int64(1 + r.Intn(20000))
		waiting[i] = &job.Job{
			ID: job.ID(i + 1), Submit: int64(r.Intn(1000)),
			Width: 1 + r.Intn(128), Estimate: est, Runtime: est,
		}
	}
	s := Build(1000, 128, nil, waiting, policy.SJF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PlannedSLDwA()
	}
}
