package plan

import (
	"fmt"
	"testing"

	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/rng"
)

// BenchmarkBuild measures full-schedule construction at several queue
// depths — the dominant cost of a self-tuning step (three builds per
// scheduling event).
func BenchmarkBuild(b *testing.B) {
	for _, queued := range []int{16, 128, 1024} {
		for _, p := range policy.Candidates {
			b.Run(fmt.Sprintf("queue%d/%s", queued, p), func(b *testing.B) {
				r := rng.New(7)
				waiting := make([]*job.Job, queued)
				for i := range waiting {
					est := int64(1 + r.Intn(20000))
					waiting[i] = &job.Job{
						ID: job.ID(i + 1), Submit: int64(r.Intn(1000)),
						Width: 1 + r.Intn(128), Estimate: est, Runtime: est,
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					Build(1000, 128, nil, waiting, p)
				}
			})
		}
	}
}

// BenchmarkPlannedSLDwA measures schedule scoring.
func BenchmarkPlannedSLDwA(b *testing.B) {
	r := rng.New(8)
	waiting := make([]*job.Job, 512)
	for i := range waiting {
		est := int64(1 + r.Intn(20000))
		waiting[i] = &job.Job{
			ID: job.ID(i + 1), Submit: int64(r.Intn(1000)),
			Width: 1 + r.Intn(128), Estimate: est, Runtime: est,
		}
	}
	s := Build(1000, 128, nil, waiting, policy.SJF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PlannedSLDwA()
	}
}
