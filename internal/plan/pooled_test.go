package plan

import (
	"math"
	"testing"

	"dynp/internal/policy"
)

// TestPooledMatchesUnpooled drives the pooled builders through many random
// machine states — repeatedly, so pooled storage actually cycles — and
// requires byte-identical schedules and scores from the unpooled path.
func TestPooledMatchesUnpooled(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		running, waiting := randomState(seed, 32, 6, 24)
		now := int64(0)

		base := BuildBase(now, 32, running)
		pooled := BuildBasePooled(now, 32, running)
		if !base.EqualFrom(pooled, now) {
			t.Fatalf("seed %d: pooled base differs from unpooled", seed)
		}
		for _, p := range policy.Candidates {
			want := BuildFrom(base, waiting, p)
			got := BuildFromPooled(pooled, waiting, p)
			assertSameSchedule(t, got, want)
			ordered := policy.Order(p, waiting)
			got2 := BuildFromOrdered(pooled, ordered, p)
			assertSameSchedule(t, got2, want)
			got.Release()
			got2.Release()
		}
		pooled.Release()
	}
}

func assertSameSchedule(t *testing.T, got, want *Schedule) {
	t.Helper()
	if len(got.Entries) != len(want.Entries) ||
		got.Now != want.Now || got.Capacity != want.Capacity || got.Policy != want.Policy {
		t.Fatalf("schedule header mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Entries {
		if got.Entries[i] != want.Entries[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, got.Entries[i], want.Entries[i])
		}
	}
	type scores struct{ a, b, c, d, e float64 }
	g := scores{got.PlannedSLDwA(), got.PlannedART(), got.PlannedARTwW(), got.PlannedAWT(), got.PlannedMakespan()}
	w := scores{want.PlannedSLDwA(), want.PlannedART(), want.PlannedARTwW(), want.PlannedAWT(), want.PlannedMakespan()}
	if g != w {
		t.Fatalf("scores mismatch: %+v vs %+v", g, w)
	}
}

// TestFusedScoresMatchWalked compares the fused (accumulated during
// placement) scores against the walking fallback, which an unscored copy
// of the same schedule exercises. Byte equality required, not tolerance.
func TestFusedScoresMatchWalked(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		running, waiting := randomState(seed, 16, 4, 32)
		for _, p := range policy.Candidates {
			s := Build(0, 16, running, waiting, p)
			if !s.scored {
				t.Fatal("builder output not marked scored")
			}
			walked := &Schedule{Now: s.Now, Capacity: s.Capacity, Policy: s.Policy, Entries: s.Entries}
			if s.PlannedSLDwA() != walked.PlannedSLDwA() ||
				s.PlannedART() != walked.PlannedART() ||
				s.PlannedARTwW() != walked.PlannedARTwW() ||
				s.PlannedAWT() != walked.PlannedAWT() ||
				s.PlannedMakespan() != walked.PlannedMakespan() ||
				s.MaxEstimatedEnd() != walked.MaxEstimatedEnd() ||
				s.MinStart() != walked.MinStart() {
				t.Fatalf("seed %d %v: fused scores differ from walked", seed, p)
			}
		}
	}
}

func TestUnscoredEmptyScheduleConventions(t *testing.T) {
	s := &Schedule{Now: 10, Capacity: 4}
	if s.PlannedSLDwA() != 0 || s.PlannedART() != 0 || s.PlannedMakespan() != 0 {
		t.Fatal("empty unscored schedule must score 0")
	}
	if s.MinStart() != math.MaxInt64 {
		t.Fatalf("empty MinStart = %d, want MaxInt64", s.MinStart())
	}
	if s.MaxEstimatedEnd() != 0 {
		t.Fatalf("empty MaxEstimatedEnd = %d, want 0", s.MaxEstimatedEnd())
	}
}

func TestScheduleDoubleReleasePanics(t *testing.T) {
	base := BuildBasePooled(0, 8, nil)
	s := BuildFromPooled(base, nil, policy.FCFS)
	s.Release()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Schedule.Release did not panic")
			}
		}()
		s.Release()
	}()
	base.Release()
}

func TestBaseDoubleReleasePanics(t *testing.T) {
	base := BuildBasePooled(0, 8, nil)
	base.Release()
	defer func() {
		if recover() == nil {
			t.Error("double Base.Release did not panic")
		}
	}()
	base.Release()
}

// TestPooledScheduleReuseDoesNotAliasEscaped reproduces the ownership
// discipline: an escaped (never released) schedule must keep its entries
// intact while the pools hand storage to later builds.
func TestPooledScheduleReuseDoesNotAliasEscaped(t *testing.T) {
	running, waiting := randomState(7, 16, 3, 16)
	base := BuildBasePooled(0, 16, running)
	kept := BuildFromPooled(base, waiting, policy.SJF)
	snapshot := append([]Entry(nil), kept.Entries...)
	for i := 0; i < 50; i++ {
		loser := BuildFromPooled(base, waiting, policy.Candidates[i%len(policy.Candidates)])
		loser.Release()
	}
	base.Release()
	for i, e := range kept.Entries {
		if e != snapshot[i] {
			t.Fatalf("escaped schedule entry %d mutated by pool reuse: %+v vs %+v", i, e, snapshot[i])
		}
	}
}
