// Package plan builds full schedules the way a planning-based resource
// management system does: every waiting job receives a planned start time
// at the earliest hole in the availability profile that fits its width for
// its full estimated run time, visiting jobs in the active policy's order.
// Backfilling is implicit — a short narrow job later in the order may slip
// into a gap before a wide job earlier in the order, but never delays it,
// because the wide job's reservation is already fixed.
//
// The same code path serves two purposes: the executing scheduler derives
// actual start times from the plan, and the self-tuning dynP step builds
// three hypothetical ("what-if") schedules, one per candidate policy, to
// score them against each other.
package plan

import (
	"fmt"

	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/profile"
)

// Running describes a job currently executing on the machine. Its
// processors stay reserved until Start+Estimate — the planner must assume
// the estimate is exhausted; an earlier actual completion simply triggers
// the next replanning event.
type Running struct {
	Job   *job.Job
	Start int64
}

// EstimatedEnd returns the planner-visible completion time.
func (r Running) EstimatedEnd() int64 { return r.Job.EstimatedEnd(r.Start) }

// Entry is one waiting job with its planned start time.
type Entry struct {
	Job   *job.Job
	Start int64
}

// Schedule is a full plan: a start time for every waiting job, given the
// machine state at time Now.
type Schedule struct {
	Now      int64
	Capacity int
	Policy   policy.Policy
	Entries  []Entry // in placement (policy) order
}

// Base is the reusable starting state of schedule construction at one
// scheduling event: the availability profile with every running job's
// reservation already applied. The self-tuning dynP step builds it once
// per event and derives each candidate policy's what-if schedule from a
// clone, instead of re-allocating the running jobs once per candidate.
// A Base is never mutated after construction, so any number of BuildFrom
// calls — including concurrent ones — may share it.
type Base struct {
	Now      int64
	Capacity int
	prof     *profile.Profile
}

// BuildBase constructs the shared planning state for one scheduling
// event: running jobs block their processors until their estimated end.
func BuildBase(now int64, capacity int, running []Running) *Base {
	prof := profile.New(capacity, now)
	for _, r := range running {
		if rem := r.EstimatedEnd() - now; rem > 0 {
			prof.Alloc(now, r.Job.Width, rem)
		}
	}
	return &Base{Now: now, Capacity: capacity, prof: prof}
}

// Profile returns a copy of the base availability profile, for tests and
// debugging output.
func (b *Base) Profile() *profile.Profile { return b.prof.Clone() }

// BuildFrom computes the schedule for the waiting jobs under policy p,
// starting from a clone of the base profile. The base is not modified,
// so sibling candidate builds may run concurrently from the same base.
// The waiting slice is not modified.
func BuildFrom(b *Base, waiting []*job.Job, p policy.Policy) *Schedule {
	return buildOnto(b.prof.Clone(), b.Now, b.Capacity, waiting, p)
}

// Build computes a full schedule for the waiting jobs under policy p.
// Running jobs block their processors until their estimated end. The
// waiting slice is not modified. One-shot equivalent of BuildBase +
// BuildFrom without the defensive clone.
func Build(now int64, capacity int, running []Running, waiting []*job.Job, p policy.Policy) *Schedule {
	b := BuildBase(now, capacity, running)
	return buildOnto(b.prof, b.Now, b.Capacity, waiting, p)
}

// buildOnto places the waiting jobs in policy order onto prof, which it
// consumes (the caller must not reuse it).
func buildOnto(prof *profile.Profile, now int64, capacity int, waiting []*job.Job, p policy.Policy) *Schedule {
	s := &Schedule{Now: now, Capacity: capacity, Policy: p,
		Entries: make([]Entry, 0, len(waiting))}
	for _, j := range p.Order(waiting) {
		start := prof.Place(now, j.Width, j.Estimate)
		s.Entries = append(s.Entries, Entry{Job: j, Start: start})
	}
	return s
}

// StartingNow returns the entries whose planned start time equals the
// schedule's Now — the jobs the executing scheduler must launch
// immediately.
func (s *Schedule) StartingNow() []Entry {
	var out []Entry
	for _, e := range s.Entries {
		if e.Start == s.Now {
			out = append(out, e)
		}
	}
	return out
}

// PlannedSLDwA is the slowdown weighted by job area of the planned
// schedule, using estimates as the run time (the only run time the planner
// can see). It is the paper's headline decision metric: SLDwA =
// sum(a_i*s_i)/sum(a_i) with a_i the estimated area and s_i =
// (wait_i+estimate_i)/estimate_i. An empty plan scores 0.
func (s *Schedule) PlannedSLDwA() float64 {
	var num, den float64
	for _, e := range s.Entries {
		a := float64(e.Job.EstimatedArea())
		sld := float64(e.Start-e.Job.Submit+e.Job.Estimate) / float64(e.Job.Estimate)
		num += a * sld
		den += a
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// PlannedART is the average planned response time (wait + estimate) of the
// waiting jobs. An empty plan scores 0.
func (s *Schedule) PlannedART() float64 {
	if len(s.Entries) == 0 {
		return 0
	}
	var sum float64
	for _, e := range s.Entries {
		sum += float64(e.Start - e.Job.Submit + e.Job.Estimate)
	}
	return sum / float64(len(s.Entries))
}

// PlannedARTwW is the planned average response time weighted by job width,
// which the paper notes is proportional to SLDwA for a fixed job set.
// An empty plan scores 0.
func (s *Schedule) PlannedARTwW() float64 {
	var num, den float64
	for _, e := range s.Entries {
		w := float64(e.Job.Width)
		num += w * float64(e.Start-e.Job.Submit+e.Job.Estimate)
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// PlannedAWT is the average planned waiting time. An empty plan scores 0.
func (s *Schedule) PlannedAWT() float64 {
	if len(s.Entries) == 0 {
		return 0
	}
	var sum float64
	for _, e := range s.Entries {
		sum += float64(e.Start - e.Job.Submit)
	}
	return sum / float64(len(s.Entries))
}

// PlannedMakespan is the latest estimated completion time over the waiting
// entries, as an offset from Now (so schedules at different instants are
// comparable). An empty plan scores 0.
func (s *Schedule) PlannedMakespan() float64 {
	var end int64
	for _, e := range s.Entries {
		if t := e.Job.EstimatedEnd(e.Start); t > end {
			end = t
		}
	}
	if end == 0 {
		return 0
	}
	return float64(end - s.Now)
}

// Verify checks that the schedule is feasible: no entry starts before Now
// or before its submission, and the profile including running jobs is never
// over-subscribed. It is used by tests and by the simulator's paranoid
// mode.
func (s *Schedule) Verify(running []Running) error {
	prof := profile.New(s.Capacity, s.Now)
	for _, r := range running {
		if rem := r.EstimatedEnd() - s.Now; rem > 0 {
			prof.Alloc(s.Now, r.Job.Width, rem)
		}
	}
	for _, e := range s.Entries {
		if e.Start < s.Now {
			return fmt.Errorf("plan: %s starts at %d before now %d", e.Job, e.Start, s.Now)
		}
		if e.Start < e.Job.Submit {
			return fmt.Errorf("plan: %s starts at %d before its submission", e.Job, e.Start)
		}
		if got := prof.EarliestFit(e.Start, e.Job.Width, e.Job.Estimate); got != e.Start {
			return fmt.Errorf("plan: %s does not fit at %d (earliest %d)", e.Job, e.Start, got)
		}
		prof.Alloc(e.Start, e.Job.Width, e.Job.Estimate)
	}
	return nil
}
