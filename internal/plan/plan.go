// Package plan builds full schedules the way a planning-based resource
// management system does: every waiting job receives a planned start time
// at the earliest hole in the availability profile that fits its width for
// its full estimated run time, visiting jobs in the active policy's order.
// Backfilling is implicit — a short narrow job later in the order may slip
// into a gap before a wide job earlier in the order, but never delays it,
// because the wide job's reservation is already fixed.
//
// The same code path serves two purposes: the executing scheduler derives
// actual start times from the plan, and the self-tuning dynP step builds
// three hypothetical ("what-if") schedules, one per candidate policy, to
// score them against each other.
package plan

import (
	"fmt"
	"math"
	"sync"

	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/profile"
)

// Running describes a job currently executing on the machine. Its
// processors stay reserved until Start+Estimate — the planner must assume
// the estimate is exhausted; an earlier actual completion simply triggers
// the next replanning event.
type Running struct {
	Job   *job.Job
	Start int64
}

// EstimatedEnd returns the planner-visible completion time.
func (r Running) EstimatedEnd() int64 { return r.Job.EstimatedEnd(r.Start) }

// Entry is one waiting job with its planned start time.
type Entry struct {
	Job   *job.Job
	Start int64
}

// Schedule is a full plan: a start time for every waiting job, given the
// machine state at time Now.
type Schedule struct {
	Now      int64
	Capacity int
	Policy   policy.Policy
	Entries  []Entry // in placement (policy) order

	// Fused scoring state: the builders accumulate every metric's sums in
	// the placement pass, so the Planned* accessors need not re-walk the
	// entries. Schedules assembled by hand (entry-by-entry, e.g. the EASY
	// driver's) leave scored false and the accessors fall back to walking.
	scored   bool
	sums     aggregates
	released bool // guards double-Release of pooled storage
}

// aggregates holds the per-metric running sums of one placement pass. The
// accumulation expressions and their order mirror the Planned* walking
// loops exactly, so fused and walked scores are byte-identical.
type aggregates struct {
	sldNum, sldDen     float64 // PlannedSLDwA
	artSum             float64 // PlannedART
	artwwNum, artwwDen float64 // PlannedARTwW
	awtSum             float64 // PlannedAWT
	maxEnd             int64   // PlannedMakespan (0 when no entries)
	minStart           int64   // earliest planned start (MaxInt64 when none)
}

// accumulate folds one placed entry into the running sums.
func (a *aggregates) accumulate(j *job.Job, start int64) {
	area := float64(j.EstimatedArea())
	sld := float64(start-j.Submit+j.Estimate) / float64(j.Estimate)
	a.sldNum += area * sld
	a.sldDen += area
	a.artSum += float64(start - j.Submit + j.Estimate)
	w := float64(j.Width)
	a.artwwNum += w * float64(start-j.Submit+j.Estimate)
	a.artwwDen += w
	a.awtSum += float64(start - j.Submit)
	if end := j.EstimatedEnd(start); end > a.maxEnd {
		a.maxEnd = end
	}
	if start < a.minStart {
		a.minStart = start
	}
}

// Base is the reusable starting state of schedule construction at one
// scheduling event: the availability profile with every running job's
// reservation already applied. The self-tuning dynP step builds it once
// per event and derives each candidate policy's what-if schedule from a
// clone, instead of re-allocating the running jobs once per candidate.
// A Base is never mutated after construction, so any number of BuildFrom
// calls — including concurrent ones — may share it.
type Base struct {
	Now      int64
	Capacity int
	prof     *profile.Profile
}

// The hot-path arenas. One self-tuning step builds a base profile, one
// candidate profile clone per policy, and one Schedule (with its Entry
// slice) per policy — at every scheduling event, over a full SWF trace.
// The pools let that storage cycle instead of being reallocated: candidate
// profiles are returned the moment a build finishes, losing candidate
// schedules after scoring (see Schedule.Release), base profiles when the
// next event's base replaces them (see Base.Release). sync.Pool is safe
// for the tuner's concurrent candidate builds and for concurrent
// simulations sharing the package-level pools.
var (
	profilePool  = sync.Pool{New: func() any { return new(profile.Profile) }}
	schedulePool = sync.Pool{New: func() any { return new(Schedule) }}
	basePool     = sync.Pool{New: func() any { return new(Base) }}
)

// BuildBase constructs the shared planning state for one scheduling
// event: running jobs block their processors until their estimated end.
func BuildBase(now int64, capacity int, running []Running) *Base {
	b := &Base{}
	buildBaseInto(b, profile.New(capacity, now), now, capacity, running)
	return b
}

// BuildBasePooled is BuildBase drawing its storage from the package pools.
// The caller owns the result and must call Release exactly once when no
// builds derived from it can run anymore; until then the Base must stay
// alive (BuildFrom* clone it per candidate).
func BuildBasePooled(now int64, capacity int, running []Running) *Base {
	b := basePool.Get().(*Base)
	prof := profilePool.Get().(*profile.Profile)
	prof.Reset(capacity, now)
	buildBaseInto(b, prof, now, capacity, running)
	return b
}

func buildBaseInto(b *Base, prof *profile.Profile, now int64, capacity int, running []Running) {
	for _, r := range running {
		if rem := r.EstimatedEnd() - now; rem > 0 {
			prof.Alloc(now, r.Job.Width, rem)
		}
	}
	b.Now, b.Capacity, b.prof = now, capacity, prof
}

// Release returns a pooled base's storage to the arena. Only the owner of
// a Base obtained from BuildBasePooled may call it, and only once; the
// Base and any profile view of it are invalid afterwards. Releasing a
// Base from BuildBase is also legal — its storage simply joins the pool.
func (b *Base) Release() {
	if b.prof == nil {
		panic("plan: Base released twice")
	}
	profilePool.Put(b.prof)
	b.prof = nil
	basePool.Put(b)
}

// Profile returns a copy of the base availability profile, for tests and
// debugging output.
func (b *Base) Profile() *profile.Profile { return b.prof.Clone() }

// EqualFrom reports whether two bases promise the same free processors
// over [from, infinity) — the availability-equality half of the tuner's
// plan-memoization check (see core.SelfTuner).
func (b *Base) EqualFrom(o *Base, from int64) bool {
	return b.prof.EqualFrom(o.prof, from)
}

// BuildFrom computes the schedule for the waiting jobs under policy p,
// starting from a clone of the base profile. The base is not modified,
// so sibling candidate builds may run concurrently from the same base.
// The waiting slice is not modified.
func BuildFrom(b *Base, waiting []*job.Job, p policy.Policy) *Schedule {
	s := &Schedule{}
	buildOnto(s, b.prof.Clone(), b.Now, b.Capacity, policy.Order(p, waiting), p)
	return s
}

// BuildFromPooled is BuildFrom with every piece of scratch storage drawn
// from the package pools: the candidate profile clone (returned to the
// pool before BuildFromPooled returns — it is consumed by the build) and
// the Schedule itself. The caller owns the returned Schedule; if it never
// escapes, Release recycles it.
func BuildFromPooled(b *Base, waiting []*job.Job, p policy.Policy) *Schedule {
	return buildPooled(b, policy.Order(p, waiting), p)
}

// BuildFromOrdered is BuildFromPooled for a waiting queue that is already
// in policy p's order (policy.Order's output, or an incrementally
// maintained view of it — see core.SelfTuner). The ordered slice is not
// modified and must not change while the build runs.
func BuildFromOrdered(b *Base, ordered []*job.Job, p policy.Policy) *Schedule {
	return buildPooled(b, ordered, p)
}

func buildPooled(b *Base, ordered []*job.Job, p policy.Policy) *Schedule {
	prof := profilePool.Get().(*profile.Profile)
	b.prof.CloneInto(prof)
	s := schedulePool.Get().(*Schedule)
	buildOnto(s, prof, b.Now, b.Capacity, ordered, p)
	profilePool.Put(prof)
	return s
}

// ReleaseSchedules releases every non-nil schedule in ss and nils the
// slots, for owners discarding a whole batch of pooled builds at once —
// the self-tuner's speculative pipeline uses it when a prediction missed
// and none of the prebuilt candidates can be consumed. The slots are
// nilled so a second sweep over the same slice cannot double-release.
func ReleaseSchedules(ss []*Schedule) {
	for i, s := range ss {
		if s != nil {
			s.Release()
			ss[i] = nil
		}
	}
}

// Release returns a schedule's storage (the Entry slice and the Schedule
// struct itself) to the pool. Only an owner that knows no other reference
// exists may call it: the self-tuner releases the losing what-if
// candidates after scoring, which never escape it; the chosen schedule is
// handed to the caller and must NOT be released by the tuner. Double
// release panics.
//
// Ownership may cross goroutines: the speculative planning pipeline
// builds pooled bases and schedules on a worker goroutine and hands them
// to the consuming goroutine over a channel, whose send/receive pair
// orders the builder's writes before the consumer's reads. The pools
// themselves are sync.Pools, safe for that traffic; the
// release-exactly-once discipline (enforced by the double-release
// panics here and in Base.Release) is what keeps an arena from serving
// two owners at once.
func (s *Schedule) Release() {
	if s.released {
		panic("plan: Schedule released twice")
	}
	s.released = true
	schedulePool.Put(s)
}

// Build computes a full schedule for the waiting jobs under policy p.
// Running jobs block their processors until their estimated end. The
// waiting slice is not modified. One-shot equivalent of BuildBase +
// BuildFrom without the defensive clone.
func Build(now int64, capacity int, running []Running, waiting []*job.Job, p policy.Policy) *Schedule {
	b := BuildBase(now, capacity, running)
	s := &Schedule{}
	buildOnto(s, b.prof, b.Now, b.Capacity, policy.Order(p, waiting), p)
	return s
}

// buildOnto places the ordered jobs onto prof, which it consumes (the
// caller must not reuse it), filling s. Metric sums are accumulated in the
// same pass (see aggregates), so scoring the result re-walks nothing.
func buildOnto(s *Schedule, prof *profile.Profile, now int64, capacity int, ordered []*job.Job, p policy.Policy) {
	entries := s.Entries[:0]
	if entries == nil || cap(entries) < len(ordered) {
		// Always non-nil, even for an empty queue, matching the historic
		// builders so empty schedules stay indistinguishable from them.
		entries = make([]Entry, 0, len(ordered))
	}
	*s = Schedule{Now: now, Capacity: capacity, Policy: p,
		Entries: entries,
		scored:  true,
		sums:    aggregates{minStart: math.MaxInt64},
	}
	for _, j := range ordered {
		start := prof.Place(now, j.Width, j.Estimate)
		s.Entries = append(s.Entries, Entry{Job: j, Start: start})
		s.sums.accumulate(j, start)
	}
}

// StartingNow returns the entries whose planned start time equals the
// schedule's Now — the jobs the executing scheduler must launch
// immediately.
func (s *Schedule) StartingNow() []Entry {
	var out []Entry
	for _, e := range s.Entries {
		if e.Start == s.Now {
			out = append(out, e)
		}
	}
	return out
}

// PlannedSLDwA is the slowdown weighted by job area of the planned
// schedule, using estimates as the run time (the only run time the planner
// can see). It is the paper's headline decision metric: SLDwA =
// sum(a_i*s_i)/sum(a_i) with a_i the estimated area and s_i =
// (wait_i+estimate_i)/estimate_i. An empty plan scores 0.
func (s *Schedule) PlannedSLDwA() float64 {
	num, den := s.sums.sldNum, s.sums.sldDen
	if !s.scored {
		for _, e := range s.Entries {
			a := float64(e.Job.EstimatedArea())
			sld := float64(e.Start-e.Job.Submit+e.Job.Estimate) / float64(e.Job.Estimate)
			num += a * sld
			den += a
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// PlannedART is the average planned response time (wait + estimate) of the
// waiting jobs. An empty plan scores 0.
func (s *Schedule) PlannedART() float64 {
	if len(s.Entries) == 0 {
		return 0
	}
	sum := s.sums.artSum
	if !s.scored {
		for _, e := range s.Entries {
			sum += float64(e.Start - e.Job.Submit + e.Job.Estimate)
		}
	}
	return sum / float64(len(s.Entries))
}

// PlannedARTwW is the planned average response time weighted by job width,
// which the paper notes is proportional to SLDwA for a fixed job set.
// An empty plan scores 0.
func (s *Schedule) PlannedARTwW() float64 {
	num, den := s.sums.artwwNum, s.sums.artwwDen
	if !s.scored {
		for _, e := range s.Entries {
			w := float64(e.Job.Width)
			num += w * float64(e.Start-e.Job.Submit+e.Job.Estimate)
			den += w
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// PlannedAWT is the average planned waiting time. An empty plan scores 0.
func (s *Schedule) PlannedAWT() float64 {
	if len(s.Entries) == 0 {
		return 0
	}
	sum := s.sums.awtSum
	if !s.scored {
		for _, e := range s.Entries {
			sum += float64(e.Start - e.Job.Submit)
		}
	}
	return sum / float64(len(s.Entries))
}

// PlannedMakespan is the latest estimated completion time over the waiting
// entries, as an offset from Now (so schedules at different instants are
// comparable). An empty plan scores 0.
func (s *Schedule) PlannedMakespan() float64 {
	end := s.MaxEstimatedEnd()
	if end == 0 {
		return 0
	}
	return float64(end - s.Now)
}

// MaxEstimatedEnd returns the latest estimated completion time over the
// entries, 0 when there are none (PlannedMakespan's convention). Together
// with a later Now it reproduces PlannedMakespan without the entries —
// the tuner's memoization uses it to re-score a retained plan.
func (s *Schedule) MaxEstimatedEnd() int64 {
	if s.scored {
		return s.sums.maxEnd
	}
	var end int64
	for _, e := range s.Entries {
		if t := e.Job.EstimatedEnd(e.Start); t > end {
			end = t
		}
	}
	return end
}

// MinStart returns the earliest planned start over the entries, or
// math.MaxInt64 when there are none. The tuner's memoization requires it
// to be >= the new event time before reusing a retained plan.
func (s *Schedule) MinStart() int64 {
	if s.scored {
		return s.sums.minStart
	}
	min := int64(math.MaxInt64)
	for _, e := range s.Entries {
		if e.Start < min {
			min = e.Start
		}
	}
	return min
}

// Verify checks that the schedule is feasible: no entry starts before Now
// or before its submission, and the profile including running jobs is never
// over-subscribed. It is used by tests and by the simulator's paranoid
// mode.
func (s *Schedule) Verify(running []Running) error {
	prof := profile.New(s.Capacity, s.Now)
	for _, r := range running {
		if rem := r.EstimatedEnd() - s.Now; rem > 0 {
			prof.Alloc(s.Now, r.Job.Width, rem)
		}
	}
	for _, e := range s.Entries {
		if e.Start < s.Now {
			return fmt.Errorf("plan: %s starts at %d before now %d", e.Job, e.Start, s.Now)
		}
		if e.Start < e.Job.Submit {
			return fmt.Errorf("plan: %s starts at %d before its submission", e.Job, e.Start)
		}
		if got := prof.EarliestFit(e.Start, e.Job.Width, e.Job.Estimate); got != e.Start {
			return fmt.Errorf("plan: %s does not fit at %d (earliest %d)", e.Job, e.Start, got)
		}
		prof.Alloc(e.Start, e.Job.Width, e.Job.Estimate)
	}
	return nil
}
