package plan

import (
	"math"
	"testing"
	"testing/quick"

	"dynp/internal/job"
	"dynp/internal/policy"
	"dynp/internal/rng"
)

func mkJob(id job.ID, submit int64, width int, est int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: est}
}

func startOf(s *Schedule, id job.ID) int64 {
	for _, e := range s.Entries {
		if e.Job.ID == id {
			return e.Start
		}
	}
	return -1
}

func TestBuildEmpty(t *testing.T) {
	s := Build(100, 8, nil, nil, policy.FCFS)
	if len(s.Entries) != 0 {
		t.Fatal("empty build produced entries")
	}
	for _, v := range []float64{s.PlannedSLDwA(), s.PlannedART(), s.PlannedARTwW(),
		s.PlannedAWT(), s.PlannedMakespan()} {
		if v != 0 {
			t.Fatalf("empty schedule metric %v != 0", v)
		}
	}
}

func TestBuildIdleMachineStartsNow(t *testing.T) {
	j := mkJob(1, 0, 4, 100)
	s := Build(50, 8, nil, []*job.Job{j}, policy.FCFS)
	if got := startOf(s, 1); got != 50 {
		t.Fatalf("start = %d, want 50 (now)", got)
	}
}

func TestBuildWaitsForRunning(t *testing.T) {
	running := []Running{{Job: mkJob(9, 0, 6, 100), Start: 0}}
	j := mkJob(1, 0, 4, 10)
	s := Build(20, 8, running, []*job.Job{j}, policy.FCFS)
	// 2 processors free until 100; width 4 must wait for the running
	// job's estimated end.
	if got := startOf(s, 1); got != 100 {
		t.Fatalf("start = %d, want 100", got)
	}
}

func TestImplicitBackfilling(t *testing.T) {
	// FCFS order: wide job first (reserves after running job), short
	// narrow job second — it must backfill into the gap without delaying
	// the wide job's reservation.
	running := []Running{{Job: mkJob(9, 0, 6, 100), Start: 0}}
	wide := mkJob(1, 1, 8, 50)
	narrow := mkJob(2, 2, 2, 80)
	s := Build(10, 8, running, []*job.Job{wide, narrow}, policy.FCFS)
	if got := startOf(s, 1); got != 100 {
		t.Fatalf("wide start = %d, want 100", got)
	}
	if got := startOf(s, 2); got != 10 {
		t.Fatalf("narrow should backfill at 10, got %d", got)
	}
	if err := s.Verify(running); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestBackfillNeverDelaysEarlierJob(t *testing.T) {
	// The narrow job is too long for the gap; it must not postpone the
	// wide job (placed first in FCFS order).
	running := []Running{{Job: mkJob(9, 0, 6, 100), Start: 0}}
	wide := mkJob(1, 1, 8, 50)
	long := mkJob(2, 2, 2, 200)
	s := Build(10, 8, running, []*job.Job{wide, long}, policy.FCFS)
	if got := startOf(s, 1); got != 100 {
		t.Fatalf("wide start = %d, want 100", got)
	}
	if got := startOf(s, 2); got != 150 {
		t.Fatalf("long narrow start = %d, want 150", got)
	}
}

func TestPolicyOrderMatters(t *testing.T) {
	// One processor machine: execution is strictly sequential in policy
	// order.
	short := mkJob(1, 0, 1, 10)
	long := mkJob(2, 0, 1, 100)
	waiting := []*job.Job{long, short}

	sjf := Build(0, 1, nil, waiting, policy.SJF)
	if startOf(sjf, 1) != 0 || startOf(sjf, 2) != 10 {
		t.Fatalf("SJF plan wrong: short at %d, long at %d", startOf(sjf, 1), startOf(sjf, 2))
	}
	ljf := Build(0, 1, nil, waiting, policy.LJF)
	if startOf(ljf, 2) != 0 || startOf(ljf, 1) != 100 {
		t.Fatalf("LJF plan wrong: long at %d, short at %d", startOf(ljf, 2), startOf(ljf, 1))
	}
}

func TestPlannedMetrics(t *testing.T) {
	// Single processor, two jobs submitted at 0: a (est 10, width 1)
	// then b (est 40, width 1), FCFS order, now = 0.
	a := mkJob(1, 0, 1, 10)
	b := mkJob(2, 0, 1, 40)
	s := Build(0, 1, nil, []*job.Job{a, b}, policy.FCFS)
	// a: start 0, response 10, slowdown 1, area 10.
	// b: start 10, response 50, slowdown 50/40 = 1.25, area 40.
	wantSLDwA := (10.0*1 + 40*1.25) / 50
	if got := s.PlannedSLDwA(); math.Abs(got-wantSLDwA) > 1e-12 {
		t.Errorf("PlannedSLDwA = %v, want %v", got, wantSLDwA)
	}
	if got := s.PlannedART(); math.Abs(got-30) > 1e-12 {
		t.Errorf("PlannedART = %v, want 30", got)
	}
	if got := s.PlannedAWT(); math.Abs(got-5) > 1e-12 {
		t.Errorf("PlannedAWT = %v, want 5", got)
	}
	if got := s.PlannedARTwW(); math.Abs(got-30) > 1e-12 {
		t.Errorf("PlannedARTwW = %v, want 30 (unit widths)", got)
	}
	if got := s.PlannedMakespan(); math.Abs(got-50) > 1e-12 {
		t.Errorf("PlannedMakespan = %v, want 50", got)
	}
}

func TestStartingNow(t *testing.T) {
	a := mkJob(1, 0, 4, 10)
	b := mkJob(2, 0, 8, 10)
	s := Build(0, 8, nil, []*job.Job{a, b}, policy.FCFS)
	starting := s.StartingNow()
	if len(starting) != 1 || starting[0].Job.ID != 1 {
		t.Fatalf("StartingNow = %v", starting)
	}
}

func TestVerifyCatchesBadSchedule(t *testing.T) {
	a := mkJob(1, 5, 4, 10)
	s := Build(10, 8, nil, []*job.Job{a}, policy.FCFS)
	s.Entries[0].Start = 3 // before now and before submit
	if err := s.Verify(nil); err == nil {
		t.Fatal("Verify accepted a start before now")
	}
	s = Build(10, 8, nil, []*job.Job{a}, policy.FCFS)
	s.Entries[0].Job = mkJob(2, 20, 4, 10) // submitted after now
	s.Entries[0].Start = 10
	if err := s.Verify(nil); err == nil {
		t.Fatal("Verify accepted a start before submission")
	}
}

func TestVerifyCatchesOverlap(t *testing.T) {
	a := mkJob(1, 0, 6, 10)
	b := mkJob(2, 0, 6, 10)
	s := Build(0, 8, nil, []*job.Job{a, b}, policy.FCFS)
	s.Entries[1].Start = 0 // force overlap: 12 > 8 processors
	if err := s.Verify(nil); err == nil {
		t.Fatal("Verify accepted over-subscription")
	}
}

func TestPropertySchedulesAlwaysFeasible(t *testing.T) {
	// Random machine states and queues: every policy must produce a
	// feasible plan and never start a job before now.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		capacity := 1 + r.Intn(32)
		now := int64(r.Intn(1000))
		var running []Running
		usedNow := 0
		for i := 0; i < r.Intn(5); i++ {
			w := 1 + r.Intn(capacity)
			if usedNow+w > capacity {
				break
			}
			usedNow += w
			start := now - int64(r.Intn(50))
			est := now - start + int64(1+r.Intn(100)) // still running
			running = append(running, Running{
				Job:   &job.Job{ID: job.ID(1000 + i), Submit: start, Width: w, Estimate: est, Runtime: est},
				Start: start,
			})
		}
		var waiting []*job.Job
		for i := 0; i < 1+r.Intn(12); i++ {
			waiting = append(waiting, &job.Job{
				ID: job.ID(i + 1), Submit: now - int64(r.Intn(100)),
				Width: 1 + r.Intn(capacity), Estimate: int64(1 + r.Intn(200)), Runtime: 1,
			})
			if waiting[i].Submit < 0 {
				waiting[i].Submit = 0
			}
		}
		for _, p := range policy.Candidates {
			s := Build(now, capacity, running, waiting, p)
			if len(s.Entries) != len(waiting) {
				return false
			}
			if err := s.Verify(running); err != nil {
				t.Logf("seed %d policy %v: %v", seed, p, err)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySJFMinimisesPlannedSLDwAOnUnitMachine(t *testing.T) {
	// On a one-processor machine with equal submits and unit widths,
	// SJF is optimal for average (and area-weighted) slowdown among the
	// three candidate orders.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		var waiting []*job.Job
		for i := 0; i < 2+r.Intn(8); i++ {
			waiting = append(waiting, &job.Job{
				ID: job.ID(i + 1), Submit: 0, Width: 1,
				Estimate: int64(1 + r.Intn(500)), Runtime: 1,
			})
		}
		sjf := Build(0, 1, nil, waiting, policy.SJF).PlannedSLDwA()
		for _, p := range []policy.Policy{policy.FCFS, policy.LJF} {
			if Build(0, 1, nil, waiting, p).PlannedSLDwA() < sjf-1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// randomState builds a deterministic mix of running and waiting jobs for
// the shared-base tests.
func randomState(seed uint64, capacity, nRunning, queued int) ([]Running, []*job.Job) {
	r := rng.New(seed)
	running := make([]Running, nRunning)
	for i := range running {
		running[i] = Running{
			Job: &job.Job{
				ID: job.ID(i + 1), Submit: 0,
				Width: 1 + r.Intn(capacity/nRunning), Estimate: int64(100 + r.Intn(5000)),
			},
			Start: 0,
		}
	}
	waiting := make([]*job.Job, queued)
	for i := range waiting {
		est := int64(1 + r.Intn(20000))
		waiting[i] = &job.Job{
			ID: job.ID(nRunning + i + 1), Submit: int64(r.Intn(1000)),
			Width: 1 + r.Intn(capacity), Estimate: est, Runtime: est,
		}
	}
	return running, waiting
}

// TestBuildFromMatchesBuild: deriving a schedule from a shared base must
// be indistinguishable from a from-scratch Build, for every policy.
func TestBuildFromMatchesBuild(t *testing.T) {
	const capacity = 64
	running, waiting := randomState(3, capacity, 8, 50)
	base := BuildBase(1000, capacity, running)
	for _, p := range policy.All {
		want := Build(1000, capacity, running, waiting, p)
		got := BuildFrom(base, waiting, p)
		if got.Now != want.Now || got.Capacity != want.Capacity || got.Policy != want.Policy {
			t.Fatalf("%s: header differs: %+v vs %+v", p, got, want)
		}
		if len(got.Entries) != len(want.Entries) {
			t.Fatalf("%s: %d entries, want %d", p, len(got.Entries), len(want.Entries))
		}
		for i := range got.Entries {
			if got.Entries[i].Job.ID != want.Entries[i].Job.ID ||
				got.Entries[i].Start != want.Entries[i].Start {
				t.Fatalf("%s: entry %d = %+v, want %+v", p, i, got.Entries[i], want.Entries[i])
			}
		}
	}
}

// TestBaseNotMutatedBySiblingBuilds: concurrent candidate builds from one
// base must never mutate it — each works on its own clone. Run with -race
// to catch write sharing.
func TestBaseNotMutatedBySiblingBuilds(t *testing.T) {
	const capacity = 64
	running, waiting := randomState(4, capacity, 8, 80)
	base := BuildBase(1000, capacity, running)
	beforeTimes, beforeFree := base.Profile().Steps()

	done := make(chan *Schedule, 3*len(policy.All))
	for round := 0; round < 3; round++ {
		for _, p := range policy.All {
			go func(p policy.Policy) { done <- BuildFrom(base, waiting, p) }(p)
		}
	}
	byPolicy := make(map[policy.Policy][]*Schedule)
	for i := 0; i < cap(done); i++ {
		s := <-done
		byPolicy[s.Policy] = append(byPolicy[s.Policy], s)
	}

	afterTimes, afterFree := base.Profile().Steps()
	if len(afterTimes) != len(beforeTimes) {
		t.Fatalf("base profile grew from %d to %d steps", len(beforeTimes), len(afterTimes))
	}
	for i := range beforeTimes {
		if beforeTimes[i] != afterTimes[i] || beforeFree[i] != afterFree[i] {
			t.Fatalf("base profile step %d changed: (%d,%d) -> (%d,%d)",
				i, beforeTimes[i], beforeFree[i], afterTimes[i], afterFree[i])
		}
	}
	for p, schedules := range byPolicy {
		want := Build(1000, capacity, running, waiting, p)
		for _, got := range schedules {
			for i := range got.Entries {
				if got.Entries[i].Job.ID != want.Entries[i].Job.ID ||
					got.Entries[i].Start != want.Entries[i].Start {
					t.Fatalf("%s: concurrent build diverged at entry %d", p, i)
				}
			}
		}
	}
}
