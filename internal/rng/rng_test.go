package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws", same)
	}
}

func TestDeriveIndependentOfParentState(t *testing.T) {
	a := New(7)
	d1 := a.Derive(1, 2)
	// Advance the parent; derivation must not depend on parent position.
	for i := 0; i < 50; i++ {
		a.Uint64()
	}
	d2 := a.Derive(1, 2)
	for i := 0; i < 100; i++ {
		if d1.Uint64() != d2.Uint64() {
			t.Fatalf("Derive depends on parent stream position (draw %d)", i)
		}
	}
}

func TestDeriveLabelsMatter(t *testing.T) {
	a := New(7)
	d1, d2 := a.Derive(1), a.Derive(2)
	if d1.Uint64() == d2.Uint64() && d1.Uint64() == d2.Uint64() {
		t.Fatal("different labels produced identical sub-streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(seed uint64) bool {
		n := int(seed%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d count %d deviates more than 5%% from %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nBounds(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZeroStateGuard(t *testing.T) {
	// No seed may produce an unusable all-zero state.
	for seed := uint64(0); seed < 64; seed++ {
		r := New(seed)
		if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
			t.Fatalf("seed %d produced a degenerate stream", seed)
		}
	}
}
