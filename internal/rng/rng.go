// Package rng provides a small, deterministic pseudo random number
// generator with cheaply derivable independent streams.
//
// The simulator must produce bit-identical job sets for a given (trace,
// set index, seed) triple regardless of how many other streams were
// consumed in between, so the global generators of math/rand are not
// suitable. The implementation is xoshiro256** seeded through splitmix64,
// the combination recommended by its authors for simulation workloads.
package rng

import "math"

// Stream is a deterministic random number stream. The zero value is not
// usable; construct streams with New or Derive.
type Stream struct {
	s      [4]uint64
	origin uint64 // immutable identity the stream was created from
}

// splitmix64 advances the seed and returns the next output. It is used to
// initialise xoshiro state and to mix derivation labels.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given seed value. Distinct seeds
// yield statistically independent streams.
func New(seed uint64) *Stream {
	st := Stream{origin: seed}
	x := seed
	for i := range st.s {
		st.s[i] = splitmix64(&x)
	}
	// xoshiro must not start at the all-zero state; splitmix64 cannot
	// produce four zero outputs in a row, but keep the guard explicit.
	if st.s == [4]uint64{} {
		st.s[0] = 1
	}
	return &st
}

// Derive returns a new independent stream labelled by the given values.
// Derivation depends only on the stream's creation seed and the labels —
// not on how far the parent has been advanced — so the same labels always
// yield the same sub-stream. The parent stream is not modified.
func (r *Stream) Derive(labels ...uint64) *Stream {
	x := r.origin ^ 0xd1b54a32d192ed03
	for _, l := range labels {
		x ^= splitmix64(&x) ^ l
		splitmix64(&x)
	}
	return New(splitmix64(&x))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in the half-open interval [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in the open interval (0, 1),
// suitable as input to inverse-CDF transforms that reject 0.
func (r *Stream) Float64Open() float64 {
	for {
		f := r.Float64()
		if f > 0 {
			return f
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift bounded generation with rejection to
	// remove modulo bias.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int64(v % bound)
		}
	}
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *Stream) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *Stream) ExpFloat64() float64 {
	return -math.Log(r.Float64Open())
}

// Perm returns a uniform random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
