package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N              int
	Min, Max       float64
	Mean           float64
	StdDev         float64 // sample standard deviation (n-1 denominator)
	Median         float64
	P90            float64
	Sum            float64
	CoeffVariation float64 // StdDev / Mean; 0 when Mean is 0
}

// Summarize computes descriptive statistics of xs. An empty sample yields
// the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	if s.Mean != 0 {
		s.CoeffVariation = s.StdDev / s.Mean
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation between closest ranks. It panics if the
// sample is empty or q is outside [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// DropMinMaxMean implements the paper's aggregation rule (Section 4.2):
// "neglecting the maximum and minimum value, so that the average is
// computed from the remaining" samples. Exactly one minimal and one maximal
// sample are removed (by value; duplicates count once). Samples with fewer
// than three values are averaged unchanged.
func DropMinMaxMean(xs []float64) float64 {
	if len(xs) < 3 {
		return Mean(xs)
	}
	minI, maxI := 0, 0
	for i, x := range xs {
		if x < xs[minI] {
			minI = i
		}
		if x > xs[maxI] {
			maxI = i
		}
	}
	if minI == maxI { // all equal: dropping any two keeps the mean
		return xs[0]
	}
	var sum float64
	for i, x := range xs {
		if i == minI || i == maxI {
			continue
		}
		sum += x
	}
	return sum / float64(len(xs)-2)
}

// WeightedMean returns sum(w_i*x_i)/sum(w_i). It panics when the slices
// differ in length and returns 0 when the total weight is zero.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var num, den float64
	for i, x := range xs {
		num += ws[i] * x
		den += ws[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}
