package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 || s.Sum != 15 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDropMinMaxMeanPaperRule(t *testing.T) {
	// Ten job-set results; drop the best and the worst, average the
	// remaining eight (paper, Section 4.2).
	xs := []float64{5, 1, 9, 4, 6, 3, 7, 2, 8, 100}
	// min=1, max=100 dropped; mean of {5,9,4,6,3,7,2,8} = 44/8.
	if got := DropMinMaxMean(xs); math.Abs(got-5.5) > 1e-12 {
		t.Fatalf("DropMinMaxMean = %v, want 5.5", got)
	}
}

func TestDropMinMaxMeanSmallSamples(t *testing.T) {
	if got := DropMinMaxMean(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := DropMinMaxMean([]float64{7}); got != 7 {
		t.Errorf("single = %v", got)
	}
	if got := DropMinMaxMean([]float64{4, 8}); got != 6 {
		t.Errorf("pair = %v", got)
	}
}

func TestDropMinMaxMeanAllEqual(t *testing.T) {
	if got := DropMinMaxMean([]float64{3, 3, 3, 3}); got != 3 {
		t.Fatalf("all equal = %v", got)
	}
}

func TestDropMinMaxMeanDuplicateExtremes(t *testing.T) {
	// Only one minimal and one maximal sample are removed.
	xs := []float64{1, 1, 5, 9, 9}
	// Drop one 1 and one 9: mean of {1, 5, 9} = 5.
	if got := DropMinMaxMean(xs); math.Abs(got-5) > 1e-12 {
		t.Fatalf("duplicate extremes = %v, want 5", got)
	}
}

func TestDropMinMaxMeanPropertyBounded(t *testing.T) {
	// The trimmed mean always lies within [min, max] of the sample.
	if err := quick.Check(func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		m := DropMinMaxMean(xs)
		return m >= s.Min-1e-9 && m <= s.Max+1e-9
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 10}, []float64{9, 1}); math.Abs(got-1.9) > 1e-12 {
		t.Fatalf("WeightedMean = %v, want 1.9", got)
	}
	if got := WeightedMean(nil, nil); got != 0 {
		t.Fatalf("empty WeightedMean = %v", got)
	}
}

func TestWeightedMeanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 9}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}
