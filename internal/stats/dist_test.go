package stats

import (
	"math"
	"testing"

	"dynp/internal/rng"
)

func sampleMean(d Dist, n int, seed uint64) float64 {
	r := rng.New(seed)
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{M: 42}
	if got := sampleMean(d, 200000, 1); math.Abs(got-42)/42 > 0.02 {
		t.Fatalf("sample mean %v deviates from 42", got)
	}
	if d.Mean() != 42 {
		t.Fatalf("analytic mean %v != 42", d.Mean())
	}
}

func TestHyperExp2Mean(t *testing.T) {
	d := HyperExp2{P: 0.9, M1: 10, M2: 500}
	want := d.Mean()
	if math.Abs(want-(0.9*10+0.1*500)) > 1e-12 {
		t.Fatalf("analytic mean %v wrong", want)
	}
	if got := sampleMean(d, 400000, 2); math.Abs(got-want)/want > 0.03 {
		t.Fatalf("sample mean %v deviates from %v", got, want)
	}
}

func TestNewBurstyIATMeanPreserved(t *testing.T) {
	for _, mean := range []float64{100, 369, 1031} {
		d := NewBurstyIAT(mean, 0.4)
		if math.Abs(d.Mean()-mean)/mean > 1e-12 {
			t.Fatalf("bursty IAT mean %v != requested %v", d.Mean(), mean)
		}
	}
}

func TestNewBurstyIATIsBursty(t *testing.T) {
	// The coefficient of variation must exceed 1 (burstier than Poisson).
	d := NewBurstyIAT(100, 0.4)
	r := rng.New(3)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	cv := math.Sqrt(sumSq/n-mean*mean) / mean
	if cv <= 1.1 {
		t.Fatalf("coefficient of variation %v not bursty", cv)
	}
}

func TestNewBurstyIATPanicsOnBadBurst(t *testing.T) {
	for _, b := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("burst %v did not panic", b)
				}
			}()
			NewBurstyIAT(100, b)
		}()
	}
}

func TestLogNormalMean(t *testing.T) {
	d := LogNormal{Mu: 2, Sigma: 0.5}
	want := math.Exp(2 + 0.125)
	if math.Abs(d.Mean()-want) > 1e-12 {
		t.Fatalf("analytic mean %v != %v", d.Mean(), want)
	}
	if got := sampleMean(d, 300000, 4); math.Abs(got-want)/want > 0.02 {
		t.Fatalf("sample mean %v deviates from %v", got, want)
	}
}

func TestClampedBounds(t *testing.T) {
	c := Clamped{D: LogNormal{Mu: 5, Sigma: 3}, Lo: 10, Hi: 100}
	r := rng.New(5)
	for i := 0; i < 10000; i++ {
		x := c.Sample(r)
		if x < 10 || x > 100 {
			t.Fatalf("clamped sample %v out of [10,100]", x)
		}
	}
}

func TestClampedLogNormalMeanAnalytic(t *testing.T) {
	// Monte Carlo cross-check of the closed-form clamped mean.
	cases := []Clamped{
		{D: LogNormal{Mu: 8, Sigma: 1.9}, Lo: 1, Hi: 64800},
		{D: LogNormal{Mu: 6, Sigma: 2.1}, Lo: 60, Hi: 216000},
		{D: LogNormal{Mu: 2, Sigma: 1.0}, Lo: 1, Hi: 50},
	}
	for _, c := range cases {
		want := c.Mean()
		got := sampleMean(c, 400000, 6)
		if math.Abs(got-want)/want > 0.03 {
			t.Fatalf("clamped lognormal mu=%v: analytic %v vs sampled %v",
				c.D.(LogNormal).Mu, want, got)
		}
	}
}

func TestFitClampedLogNormal(t *testing.T) {
	cases := []struct {
		target, sigma, lo, hi float64
	}{
		{10958, 1.9, 1, 64800},  // CTC actual runtime
		{8858, 2.1, 1, 216000},  // KTH actual runtime
		{1659, 1.8, 1, 25200},   // LANL actual runtime
		{6077, 2.0, 1, 172800},  // SDSC actual runtime
		{10.72, 1.3, 1, 336},    // CTC width
		{7.66, 1.2, 1, 100},     // KTH width
		{0.5, 1.0, 0.001, 1000}, // sub-unity target
	}
	for _, c := range cases {
		d, err := FitClampedLogNormal(c.target, c.sigma, c.lo, c.hi)
		if err != nil {
			t.Fatalf("fit(%v): %v", c.target, err)
		}
		if got := d.Mean(); math.Abs(got-c.target)/c.target > 1e-6 {
			t.Fatalf("fit(%v): analytic mean %v", c.target, got)
		}
		if got := sampleMean(d, 400000, 7); math.Abs(got-c.target)/c.target > 0.05 {
			t.Fatalf("fit(%v): sampled mean %v", c.target, got)
		}
	}
}

func TestFitClampedLogNormalErrors(t *testing.T) {
	if _, err := FitClampedLogNormal(5, 1, 10, 100); err == nil {
		t.Error("target below lower bound did not fail")
	}
	if _, err := FitClampedLogNormal(200, 1, 10, 100); err == nil {
		t.Error("target above upper bound did not fail")
	}
	if _, err := FitClampedLogNormal(50, -1, 10, 100); err == nil {
		t.Error("negative sigma did not fail")
	}
	if _, err := FitClampedLogNormal(50, 1, 100, 10); err == nil {
		t.Error("inverted bounds did not fail")
	}
}
