// Package stats provides the statistical substrate of the workload
// generators and the experiment harness: random variate distributions,
// moment fitting for clamped log-normals, and summary statistics including
// the drop-min/max ("trimmed") mean the paper uses to combine the results
// of the ten job sets per trace.
package stats

import (
	"fmt"
	"math"

	"dynp/internal/rng"
)

// Dist is a continuous distribution that can be sampled from a stream.
type Dist interface {
	// Sample draws one variate.
	Sample(r *rng.Stream) float64
	// Mean returns the analytic mean of the distribution.
	Mean() float64
}

// Exponential is an exponential distribution with the given mean.
type Exponential struct {
	M float64
}

// Sample draws an exponential variate.
func (e Exponential) Sample(r *rng.Stream) float64 { return e.M * r.ExpFloat64() }

// Mean returns the distribution mean.
func (e Exponential) Mean() float64 { return e.M }

// HyperExp2 is a two-phase hyper-exponential distribution: with probability
// P the variate is exponential with mean M1, otherwise exponential with mean
// M2. Hyper-exponentials have a coefficient of variation above one and model
// the bursty interarrival processes of production supercomputer traces
// (scripted bulk submissions interleaved with quiet periods) much better
// than a plain Poisson process.
type HyperExp2 struct {
	P      float64 // probability of phase 1
	M1, M2 float64 // phase means
}

// Sample draws a hyper-exponential variate.
func (h HyperExp2) Sample(r *rng.Stream) float64 {
	if r.Float64() < h.P {
		return h.M1 * r.ExpFloat64()
	}
	return h.M2 * r.ExpFloat64()
}

// Mean returns the distribution mean.
func (h HyperExp2) Mean() float64 { return h.P*h.M1 + (1-h.P)*h.M2 }

// NewBurstyIAT builds a hyper-exponential interarrival distribution with
// the given overall mean and burstiness. burst in (0,1) is the fraction of
// the mean carried by the rare long phase; larger values give burstier
// arrivals. Phase 1 fires 90% of the time with short gaps, phase 2 models
// the long quiet periods.
func NewBurstyIAT(mean, burst float64) HyperExp2 {
	if burst <= 0 || burst >= 1 {
		panic(fmt.Sprintf("stats: burst fraction %v out of (0,1)", burst))
	}
	const p = 0.9
	return HyperExp2{
		P:  p,
		M1: mean * (1 - burst) / p,
		M2: mean * burst / (1 - p),
	}
}

// LogNormal is a log-normal distribution parameterised by the mean Mu and
// standard deviation Sigma of the underlying normal.
type LogNormal struct {
	Mu, Sigma float64
}

// Sample draws a log-normal variate.
func (l LogNormal) Sample(r *rng.Stream) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// FromNormal maps a standard normal deviate to the log-normal, enabling
// correlated sampling: feeding correlated normals into two log-normals
// yields correlated variates with unchanged marginals.
func (l LogNormal) FromNormal(z float64) float64 {
	return math.Exp(l.Mu + l.Sigma*z)
}

// Mean returns the analytic mean exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Clamped wraps a distribution and clamps every sample into [Lo, Hi].
// Clamping (rather than rejection) keeps the probability mass of extreme
// draws at the bounds, mirroring how traces pile up at administrative
// runtime limits (e.g. the 18 h cap visible in the CTC trace).
type Clamped struct {
	D      Dist
	Lo, Hi float64
}

// Sample draws a clamped variate.
func (c Clamped) Sample(r *rng.Stream) float64 {
	return math.Min(c.Hi, math.Max(c.Lo, c.D.Sample(r)))
}

// Mean returns the analytic mean of the clamped distribution when the
// inner distribution is a LogNormal, and falls back to the inner mean
// otherwise.
func (c Clamped) Mean() float64 {
	if ln, ok := c.D.(LogNormal); ok {
		return clampedLogNormalMean(ln.Mu, ln.Sigma, c.Lo, c.Hi)
	}
	return c.D.Mean()
}

// StdNormCDF is the standard normal cumulative distribution function.
func StdNormCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// clampedLogNormalMean computes E[min(hi, max(lo, X))] for X ~ LogN(mu,
// sigma) analytically:
//
//	lo*P(X<lo) + hi*P(X>hi) + E[X; lo<=X<=hi]
//
// with E[X; a<=X<=b] = exp(mu+sigma^2/2) * (Phi((ln b-mu-sigma^2)/sigma) -
// Phi((ln a-mu-sigma^2)/sigma)).
func clampedLogNormalMean(mu, sigma, lo, hi float64) float64 {
	if lo >= hi {
		return lo
	}
	if sigma <= 0 {
		return math.Min(hi, math.Max(lo, math.Exp(mu)))
	}
	la := math.Log(math.Max(lo, math.SmallestNonzeroFloat64))
	lb := math.Log(hi)
	pBelow := StdNormCDF((la - mu) / sigma)
	pAbove := 1 - StdNormCDF((lb-mu)/sigma)
	mid := math.Exp(mu+sigma*sigma/2) *
		(StdNormCDF((lb-mu-sigma*sigma)/sigma) - StdNormCDF((la-mu-sigma*sigma)/sigma))
	return lo*pBelow + hi*pAbove + mid
}

// FitClampedLogNormal returns a Clamped LogNormal over [lo, hi] whose
// analytic mean matches target. sigma controls the spread of the underlying
// normal and is kept fixed while mu is solved by bisection. It returns an
// error when the target mean is not attainable within the bounds.
func FitClampedLogNormal(target, sigma, lo, hi float64) (Clamped, error) {
	if !(lo < hi) {
		return Clamped{}, fmt.Errorf("stats: invalid clamp bounds [%v, %v]", lo, hi)
	}
	if target <= lo || target >= hi {
		return Clamped{}, fmt.Errorf("stats: target mean %v outside clamp bounds (%v, %v)", target, lo, hi)
	}
	if sigma <= 0 {
		return Clamped{}, fmt.Errorf("stats: sigma %v must be positive", sigma)
	}
	// The clamped mean is continuous and strictly increasing in mu, with
	// limits lo (mu -> -inf) and hi (mu -> +inf), so bisection converges.
	muLo := math.Log(math.Max(lo, 1e-12)) - 10*sigma
	muHi := math.Log(hi) + 10*sigma
	for i := 0; i < 200; i++ {
		mid := (muLo + muHi) / 2
		if clampedLogNormalMean(mid, sigma, lo, hi) < target {
			muLo = mid
		} else {
			muHi = mid
		}
	}
	mu := (muLo + muHi) / 2
	c := Clamped{D: LogNormal{Mu: mu, Sigma: sigma}, Lo: lo, Hi: hi}
	if got := c.Mean(); math.Abs(got-target) > 1e-6*math.Max(1, target) {
		return Clamped{}, fmt.Errorf("stats: fit did not converge: want mean %v, got %v", target, got)
	}
	return c, nil
}
