package eventq

import (
	"testing"

	"dynp/internal/rng"
)

// BenchmarkPushPop measures steady-state heap churn at simulator-typical
// queue sizes.
func BenchmarkPushPop(b *testing.B) {
	r := rng.New(1)
	var q Queue[int]
	for i := 0; i < 1024; i++ {
		q.Push(int64(r.Intn(1<<20)), 0, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, _ := q.Pop()
		q.Push(ev.Time+int64(r.Intn(1000)), 0, ev.Payload)
	}
}
