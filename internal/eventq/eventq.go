// Package eventq implements the pending-event set of the discrete event
// simulator: a binary min-heap ordered by event time, then by an explicit
// priority class, then by insertion order. The insertion-order tie-break
// makes simulations deterministic — two events scheduled for the same time
// and class are always dispatched first-scheduled-first.
package eventq

// Queue is a deterministic discrete event queue. The zero value is an
// empty queue ready for use.
type Queue[T any] struct {
	heap []entry[T]
	seq  uint64
}

// Event is the externally visible view of a queued event.
type Event[T any] struct {
	Time    int64 // simulation time of the event
	Class   int   // dispatch class; lower dispatches first at equal time
	Payload T
}

type entry[T any] struct {
	Event[T]
	seq uint64
}

// Len reports the number of pending events.
func (q *Queue[T]) Len() int { return len(q.heap) }

// Push schedules payload at the given time and class.
func (q *Queue[T]) Push(time int64, class int, payload T) {
	q.seq++
	q.heap = append(q.heap, entry[T]{Event[T]{time, class, payload}, q.seq})
	q.up(len(q.heap) - 1)
}

// Peek returns the next event without removing it. ok is false when the
// queue is empty.
func (q *Queue[T]) Peek() (ev Event[T], ok bool) {
	if len(q.heap) == 0 {
		return ev, false
	}
	return q.heap[0].Event, true
}

// PopIf removes and returns the next event only when it is scheduled at
// exactly the given instant; ok is false (and the queue untouched) when
// the queue is empty or its head lies at another time. Event loops that
// drain one instant completely use it to fuse the Peek-compare-Pop
// sequence into a single heap inspection.
func (q *Queue[T]) PopIf(time int64) (ev Event[T], ok bool) {
	if len(q.heap) == 0 || q.heap[0].Time != time {
		return ev, false
	}
	return q.Pop()
}

// Reserve grows the queue's storage so at least n more events can be
// pushed without reallocating. Simulation harnesses that know the event
// volume up front (every job submits once and finishes once) pre-size the
// heap instead of growing it push by push — which adds up when thousands
// of replica runs each build their own queue (sim.RunParallel).
func (q *Queue[T]) Reserve(n int) {
	if cap(q.heap)-len(q.heap) >= n {
		return
	}
	heap := make([]entry[T], len(q.heap), len(q.heap)+n)
	copy(heap, q.heap)
	q.heap = heap
}

// Pop removes and returns the next event. ok is false when the queue is
// empty.
func (q *Queue[T]) Pop() (ev Event[T], ok bool) {
	if len(q.heap) == 0 {
		return ev, false
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return top.Event, true
}

func (q *Queue[T]) less(i, j int) bool {
	a, b := &q.heap[i], &q.heap[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.seq < b.seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}
