package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Fatalf("empty queue Len = %d", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
}

func TestTimeOrdering(t *testing.T) {
	var q Queue[string]
	q.Push(30, 0, "c")
	q.Push(10, 0, "a")
	q.Push(20, 0, "b")
	want := []string{"a", "b", "c"}
	for _, w := range want {
		ev, ok := q.Pop()
		if !ok || ev.Payload != w {
			t.Fatalf("got %q ok=%v, want %q", ev.Payload, ok, w)
		}
	}
}

func TestClassBreaksTimeTies(t *testing.T) {
	var q Queue[string]
	q.Push(10, 1, "submit")
	q.Push(10, 0, "finish")
	ev, _ := q.Pop()
	if ev.Payload != "finish" {
		t.Fatalf("class 0 should dispatch before class 1 at equal time, got %q", ev.Payload)
	}
}

func TestFIFOWithinTimeAndClass(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(5, 0, i)
	}
	for i := 0; i < 100; i++ {
		ev, _ := q.Pop()
		if ev.Payload != i {
			t.Fatalf("insertion order violated: got %d at position %d", ev.Payload, i)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue[int]
	q.Push(1, 0, 42)
	if ev, ok := q.Peek(); !ok || ev.Payload != 42 {
		t.Fatal("Peek failed")
	}
	if q.Len() != 1 {
		t.Fatal("Peek removed the event")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue[int64]
	rnd := rand.New(rand.NewSource(1))
	var popped []int64
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			tm := int64(rnd.Intn(1000))
			q.Push(tm, 0, tm)
		}
		for i := 0; i < 10; i++ {
			ev, ok := q.Pop()
			if !ok {
				t.Fatal("unexpected empty queue")
			}
			popped = append(popped, ev.Time)
		}
	}
	for q.Len() > 0 {
		ev, _ := q.Pop()
		popped = append(popped, ev.Time)
	}
	// Not globally sorted (interleaving), but every pop must return the
	// minimum of what was in the queue; verify via a replay.
	if len(popped) != 1000 {
		t.Fatalf("popped %d events, want 1000", len(popped))
	}
}

func TestPropertyPopsSorted(t *testing.T) {
	// When all pushes happen before all pops, pops come out sorted by
	// time with FIFO stability.
	if err := quick.Check(func(times []int64) bool {
		var q Queue[int]
		for i, tm := range times {
			if tm < 0 {
				tm = -tm
			}
			q.Push(tm%1000, 0, i)
		}
		var got []int64
		for q.Len() > 0 {
			ev, _ := q.Pop()
			got = append(got, ev.Time)
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHeapMatchesSort(t *testing.T) {
	if err := quick.Check(func(times []uint16) bool {
		var q Queue[int]
		want := make([]int64, len(times))
		for i, tm := range times {
			q.Push(int64(tm), 0, i)
			want[i] = int64(tm)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := 0; q.Len() > 0; i++ {
			ev, _ := q.Pop()
			if ev.Time != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPopIf(t *testing.T) {
	var q Queue[string]
	if _, ok := q.PopIf(0); ok {
		t.Fatal("PopIf on empty queue reported ok")
	}
	q.Push(10, 1, "submit")
	q.Push(10, 0, "finish")
	q.Push(20, 0, "later")

	if _, ok := q.PopIf(5); ok {
		t.Fatal("PopIf popped at the wrong instant")
	}
	if q.Len() != 3 {
		t.Fatal("a refused PopIf modified the queue")
	}

	// Draining one instant preserves the class-then-FIFO dispatch order.
	var batch []string
	for {
		ev, ok := q.PopIf(10)
		if !ok {
			break
		}
		batch = append(batch, ev.Payload)
	}
	if len(batch) != 2 || batch[0] != "finish" || batch[1] != "submit" {
		t.Fatalf("batch = %v, want [finish submit]", batch)
	}
	if ev, ok := q.PopIf(20); !ok || ev.Payload != "later" {
		t.Fatalf("PopIf(20) = %v ok=%v", ev.Payload, ok)
	}
	if _, ok := q.PopIf(20); ok {
		t.Fatal("PopIf on drained queue reported ok")
	}
}

func TestPopIfMatchesPeekPop(t *testing.T) {
	// PopIf(t) is exactly the Peek-compare-Pop sequence it replaces:
	// two queues built by the same push sequence drain identically.
	rnd := rand.New(rand.NewSource(7))
	var a, b Queue[int]
	for i := 0; i < 500; i++ {
		tm, cl := int64(rnd.Intn(50)), rnd.Intn(2)
		a.Push(tm, cl, i)
		b.Push(tm, cl, i)
	}
	for a.Len() > 0 {
		head, _ := a.Peek()
		now := head.Time
		for {
			h, ok := a.Peek()
			if !ok || h.Time != now {
				break
			}
			want, _ := a.Pop()
			got, ok := b.PopIf(now)
			if !ok || got != want {
				t.Fatalf("PopIf(%d) = %+v ok=%v, Peek+Pop = %+v", now, got, ok, want)
			}
		}
		if _, ok := b.PopIf(now); ok {
			t.Fatalf("PopIf(%d) overran the instant", now)
		}
	}
}

func TestReserve(t *testing.T) {
	var q Queue[int]
	q.Push(3, 0, 3)
	q.Push(1, 0, 1)
	q.Reserve(100)
	if q.Len() != 2 {
		t.Fatalf("Reserve changed Len to %d", q.Len())
	}
	// No reallocation across 100 pushes after the reservation.
	before := cap(q.heap)
	for i := 0; i < 100; i++ {
		q.Push(int64(i), 0, i)
	}
	if cap(q.heap) != before {
		t.Fatalf("heap reallocated from %d to %d despite Reserve", before, cap(q.heap))
	}
	// A no-op when capacity already suffices.
	q.Reserve(0)
	if cap(q.heap) != before {
		t.Fatal("redundant Reserve reallocated")
	}
	// Ordering intact after the copy.
	last := int64(-1)
	for q.Len() > 0 {
		ev, _ := q.Pop()
		if ev.Time < last {
			t.Fatalf("order violated after Reserve: %d after %d", ev.Time, last)
		}
		last = ev.Time
	}
}
