package gantt

import (
	"strings"
	"testing"

	"dynp/internal/job"
	"dynp/internal/metrics"
	"dynp/internal/policy"
	"dynp/internal/rng"
	"dynp/internal/sim"
)

func result(t *testing.T) *sim.Result {
	t.Helper()
	r := rng.New(4)
	set := &job.Set{Name: "g", Machine: 8}
	var clock int64
	for i := 0; i < 60; i++ {
		clock += int64(r.Intn(40))
		est := int64(1 + r.Intn(120))
		set.Jobs = append(set.Jobs, &job.Job{
			ID: job.ID(i + 1), Submit: clock,
			Width: 1 + r.Intn(8), Estimate: est, Runtime: 1 + r.Int63n(est),
		})
	}
	res, err := sim.Run(set, &sim.Static{Policy: policy.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFromResultCoversAllJobs(t *testing.T) {
	res := result(t)
	c, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]int{}
	for _, b := range c.Boxes {
		seen[b.JobID] += b.ProcHi - b.ProcLo + 1
	}
	for _, r := range res.Records {
		if seen[int64(r.Job.ID)] != r.Job.Width {
			t.Fatalf("job %d drawn with %d processors, want %d",
				r.Job.ID, seen[int64(r.Job.ID)], r.Job.Width)
		}
	}
}

func TestChartUtilizationMatchesMetrics(t *testing.T) {
	res := result(t)
	c, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	// The chart spans [First, Makespan] like the metric; areas must
	// agree exactly, so the ratio does too.
	want := metrics.Utilization(res)
	if got := c.Utilization(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("chart utilization %v, metrics %v", got, want)
	}
}

func TestBoxesNeverOverlap(t *testing.T) {
	res := result(t)
	c, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	// Per processor, the time intervals must be disjoint.
	type iv struct{ s, e int64 }
	perProc := map[int][]iv{}
	for _, b := range c.Boxes {
		for p := b.ProcLo; p <= b.ProcHi; p++ {
			perProc[p] = append(perProc[p], iv{b.Start, b.End})
		}
	}
	for p, ivs := range perProc {
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].s < ivs[j].e && ivs[j].s < ivs[i].e {
					t.Fatalf("processor %d double-booked: %v and %v", p, ivs[i], ivs[j])
				}
			}
		}
	}
}

func TestASCIIRender(t *testing.T) {
	res := result(t)
	c, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := c.ASCII(&b, 60); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "p0") || !strings.Contains(out, "p7") {
		t.Fatalf("missing processor rows:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 9 { // header + 8 rows
		t.Fatalf("expected 9 lines, got %d", lines)
	}
}

func TestASCIIErrors(t *testing.T) {
	c := &Chart{Machine: 4, Start: 10, End: 10}
	var b strings.Builder
	if err := c.ASCII(&b, 60); err == nil {
		t.Error("empty chart accepted")
	}
	c2 := &Chart{Machine: 4, Start: 0, End: 10}
	if err := c2.ASCII(&b, 5); err == nil {
		t.Error("tiny width accepted")
	}
}

func TestSVGRender(t *testing.T) {
	res := result(t)
	c, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := c.SVG(&b, 800, 400); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "</svg>", "<rect", "hsl("} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<title>") != len(c.Boxes) {
		t.Fatalf("expected one tooltip per box")
	}
}

func TestContiguousRuns(t *testing.T) {
	got := contiguousRuns([]int{0, 1, 2, 5, 7, 8})
	want := [][2]int{{0, 2}, {5, 5}, {7, 8}}
	if len(got) != len(want) {
		t.Fatalf("runs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("runs = %v, want %v", got, want)
		}
	}
}
