// Package gantt renders machine-occupancy charts of completed simulation
// runs (and of planned schedules): which job held which processors when.
// Two backends are provided — ASCII for terminals and SVG for reports.
//
// Processor assignment: the simulator models a space-shared machine where
// only the *number* of processors matters, so the renderer reconstructs a
// concrete assignment greedily (first-fit over processor indices), which
// is always possible because the machine was never over-subscribed.
package gantt

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dynp/internal/sim"
)

// Box is one job's rectangle: processors [ProcLo, ProcHi] over time
// [Start, End).
type Box struct {
	JobID          int64
	ProcLo, ProcHi int
	Start, End     int64
	Width          int
	Waited         int64 // time the job spent waiting, for colouring
}

// Chart is a processor-time occupancy chart.
type Chart struct {
	Machine    int
	Start, End int64
	Boxes      []Box
}

// FromResult reconstructs a concrete processor assignment from a
// simulation result. It fails if the records over-subscribe the machine
// (which would indicate a simulator bug).
func FromResult(res *sim.Result) (*Chart, error) {
	c := &Chart{Machine: res.Set.Machine, Start: res.First, End: res.Makespan}

	// Sweep events in time order, keeping a free-processor set.
	recs := append([]sim.Record(nil), res.Records...)
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Start != recs[j].Start {
			return recs[i].Start < recs[j].Start
		}
		return recs[i].Job.ID < recs[j].Job.ID
	})

	// Greedy first-fit over per-processor next-free times.
	nextFree := make([]int64, res.Set.Machine)
	for _, r := range recs {
		// Collect the first Width processors free at r.Start.
		var procs []int
		for p := 0; p < len(nextFree) && len(procs) < r.Job.Width; p++ {
			if nextFree[p] <= r.Start {
				procs = append(procs, p)
			}
		}
		if len(procs) < r.Job.Width {
			return nil, fmt.Errorf("gantt: cannot place %s at t=%d: machine over-subscribed", r.Job, r.Start)
		}
		for _, p := range procs {
			nextFree[p] = r.Finish
		}
		// Jobs rarely get perfectly contiguous blocks; record the span
		// for rendering and the exact set implicitly (ASCII renders per
		// processor row, so split into contiguous runs).
		for _, run := range contiguousRuns(procs) {
			c.Boxes = append(c.Boxes, Box{
				JobID:  int64(r.Job.ID),
				ProcLo: run[0], ProcHi: run[1],
				Start: r.Start, End: r.Finish,
				Width:  r.Job.Width,
				Waited: r.Wait(),
			})
		}
	}
	return c, nil
}

// contiguousRuns splits an ascending processor list into [lo, hi] runs.
func contiguousRuns(procs []int) [][2]int {
	var runs [][2]int
	for i := 0; i < len(procs); {
		j := i
		for j+1 < len(procs) && procs[j+1] == procs[j]+1 {
			j++
		}
		runs = append(runs, [2]int{procs[i], procs[j]})
		i = j + 1
	}
	return runs
}

// ASCII renders the chart as one text row per processor (downsampling
// time onto width columns). Each job is drawn with a letter cycled from
// its ID; idle processors show '.'.
func (c *Chart) ASCII(w io.Writer, width int) error {
	if width < 10 {
		return fmt.Errorf("gantt: width %d too small", width)
	}
	if c.End <= c.Start {
		return fmt.Errorf("gantt: empty chart")
	}
	span := float64(c.End - c.Start)
	grid := make([][]byte, c.Machine)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", width))
	}
	glyphs := "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	for _, b := range c.Boxes {
		g := glyphs[int(b.JobID)%len(glyphs)]
		x0 := int(float64(b.Start-c.Start) / span * float64(width))
		x1 := int(float64(b.End-c.Start) / span * float64(width))
		if x1 <= x0 {
			x1 = x0 + 1
		}
		if x1 > width {
			x1 = width
		}
		for p := b.ProcLo; p <= b.ProcHi && p < c.Machine; p++ {
			for x := x0; x < x1; x++ {
				grid[p][x] = g
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine occupancy, %d processors, t=%d..%d\n", c.Machine, c.Start, c.End)
	for p := len(grid) - 1; p >= 0; p-- {
		fmt.Fprintf(&sb, "p%-3d |%s|\n", p, grid[p])
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// SVG renders the chart as a standalone SVG document. Jobs are coloured by
// the fraction of their response time spent waiting (green: started
// immediately, red: mostly waiting).
func (c *Chart) SVG(w io.Writer, width, height int) error {
	if c.End <= c.Start {
		return fmt.Errorf("gantt: empty chart")
	}
	const margin = 40
	plotW, plotH := float64(width-2*margin), float64(height-2*margin)
	span := float64(c.End - c.Start)

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%d" y="20" font-family="monospace" font-size="12">machine occupancy: %d processors, %d..%d s</text>`+"\n",
		margin, c.Machine, c.Start, c.End)
	for _, b := range c.Boxes {
		x := margin + int(float64(b.Start-c.Start)/span*plotW)
		bw := int(float64(b.End-b.Start) / span * plotW)
		if bw < 1 {
			bw = 1
		}
		y := margin + int(float64(c.Machine-1-b.ProcHi)/float64(c.Machine)*plotH)
		bh := int(float64(b.ProcHi-b.ProcLo+1) / float64(c.Machine) * plotH)
		if bh < 1 {
			bh = 1
		}
		// Waiting fraction -> hue from green (120) to red (0).
		frac := 0.0
		if resp := b.Waited + (b.End - b.Start); resp > 0 {
			frac = float64(b.Waited) / float64(resp)
		}
		hue := 120 * (1 - frac)
		fmt.Fprintf(&sb,
			`<rect x="%d" y="%d" width="%d" height="%d" fill="hsl(%.0f,70%%,60%%)" stroke="black" stroke-width="0.3"><title>job %d (width %d, wait %d s)</title></rect>`+"\n",
			x, y, bw, bh, hue, b.JobID, b.Width, b.Waited)
	}
	fmt.Fprintf(&sb, "</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// Utilization returns the drawn area divided by the chart's
// processor-time rectangle, a cross-check against metrics.Utilization.
func (c *Chart) Utilization() float64 {
	if c.End <= c.Start {
		return 0
	}
	var area float64
	for _, b := range c.Boxes {
		area += float64(b.ProcHi-b.ProcLo+1) * float64(b.End-b.Start)
	}
	return area / (float64(c.Machine) * float64(c.End-c.Start))
}
