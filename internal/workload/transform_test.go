package workload

import (
	"math"
	"testing"

	"dynp/internal/job"
	"dynp/internal/rng"
)

func TestPerfectEstimates(t *testing.T) {
	set, err := CTC.Generate(500, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	perfect := PerfectEstimates(set)
	if err := perfect.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, j := range perfect.Jobs {
		if j.Estimate != j.Runtime {
			t.Fatalf("job %d: estimate %d != runtime %d", i, j.Estimate, j.Runtime)
		}
		if j.Runtime != set.Jobs[i].Runtime || j.Submit != set.Jobs[i].Submit {
			t.Fatalf("job %d: runtime/submit changed", i)
		}
	}
	// Deep copy: the original keeps its overestimated values.
	overestimated := false
	for _, j := range set.Jobs {
		if j.Estimate > j.Runtime {
			overestimated = true
		}
	}
	if !overestimated {
		t.Fatal("original set mutated (no overestimation left)")
	}
}

func TestScaleEstimates(t *testing.T) {
	set, err := KTH.Generate(300, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := ScaleEstimates(set, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := doubled.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, j := range doubled.Jobs {
		want := int64(float64(set.Jobs[i].Estimate)*2 + 0.5)
		if want < j.Runtime {
			want = j.Runtime
		}
		if j.Estimate != want {
			t.Fatalf("job %d: estimate %d, want %d", i, j.Estimate, want)
		}
	}
	// Shrinking estimates clamps at the runtime so the invariant holds.
	tenth, err := ScaleEstimates(set, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tenth.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ScaleEstimates(set, 0); err == nil {
		t.Fatal("factor 0 accepted")
	}
}

// TestScaleEstimatesClamp is the regression test for the estimate
// floor: small factors used to round short estimates to zero, and a
// zero-runtime trace row gave the run-time clamp nothing to hold on to,
// producing planner-illegal estimates. Every output estimate must stay
// in [1, MaxInt64] no matter the factor.
func TestScaleEstimatesClamp(t *testing.T) {
	set := &job.Set{Name: "clamp", Machine: 8, Jobs: []*job.Job{
		{ID: 1, Submit: 0, Width: 1, Estimate: 3, Runtime: 1},
		// A raw trace row before validation: zero runtime, so the
		// run-time clamp alone gives no floor.
		{ID: 2, Submit: 1, Width: 1, Estimate: 4, Runtime: 0},
		{ID: 3, Submit: 2, Width: 2, Estimate: math.MaxInt64 / 2, Runtime: 10},
	}}
	scaled, err := ScaleEstimates(set, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range scaled.Jobs {
		if j.Estimate < 1 {
			t.Errorf("job %d: factor 0.01 produced estimate %d", i, j.Estimate)
		}
	}
	if got := scaled.Jobs[1].Estimate; got != 1 {
		t.Errorf("zero-runtime row scaled to %d, want the floor 1", got)
	}

	// Huge factors saturate instead of overflowing through the
	// implementation-defined float64 -> int64 conversion.
	huge, err := ScaleEstimates(set, 1e10)
	if err != nil {
		t.Fatal(err)
	}
	if got := huge.Jobs[2].Estimate; got != math.MaxInt64 {
		t.Errorf("overflowing scale produced %d, want MaxInt64 saturation", got)
	}

	// NaN satisfies neither factor > 0 nor factor <= 0; it must not slip
	// through the guard. Infinities are rejected outright.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, 0} {
		if _, err := ScaleEstimates(set, bad); err == nil {
			t.Errorf("factor %v accepted", bad)
		}
	}
}

func TestConcatenate(t *testing.T) {
	a, err := KTH.Generate(100, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KTH.Generate(100, rng.New(34))
	if err != nil {
		t.Fatal(err)
	}
	both, err := Concatenate(a, b, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if err := both.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(both.Jobs) != 200 {
		t.Fatalf("jobs = %d", len(both.Jobs))
	}
	_, lastA := a.Span()
	if got := both.Jobs[100].Submit; got != lastA+3600+b.Jobs[0].Submit {
		t.Fatalf("phase 2 starts at %d", got)
	}
}

func TestConcatenateErrors(t *testing.T) {
	a, _ := KTH.Generate(10, rng.New(35))
	c, _ := CTC.Generate(10, rng.New(36))
	if _, err := Concatenate(a, c, 0); err == nil {
		t.Error("mismatched machines accepted")
	}
	b, _ := KTH.Generate(10, rng.New(37))
	if _, err := Concatenate(a, b, -1); err == nil {
		t.Error("negative gap accepted")
	}
}
