package workload

import (
	"testing"

	"dynp/internal/rng"
)

func TestPerfectEstimates(t *testing.T) {
	set, err := CTC.Generate(500, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	perfect := PerfectEstimates(set)
	if err := perfect.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, j := range perfect.Jobs {
		if j.Estimate != j.Runtime {
			t.Fatalf("job %d: estimate %d != runtime %d", i, j.Estimate, j.Runtime)
		}
		if j.Runtime != set.Jobs[i].Runtime || j.Submit != set.Jobs[i].Submit {
			t.Fatalf("job %d: runtime/submit changed", i)
		}
	}
	// Deep copy: the original keeps its overestimated values.
	overestimated := false
	for _, j := range set.Jobs {
		if j.Estimate > j.Runtime {
			overestimated = true
		}
	}
	if !overestimated {
		t.Fatal("original set mutated (no overestimation left)")
	}
}

func TestScaleEstimates(t *testing.T) {
	set, err := KTH.Generate(300, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := ScaleEstimates(set, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := doubled.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, j := range doubled.Jobs {
		want := int64(float64(set.Jobs[i].Estimate)*2 + 0.5)
		if want < j.Runtime {
			want = j.Runtime
		}
		if j.Estimate != want {
			t.Fatalf("job %d: estimate %d, want %d", i, j.Estimate, want)
		}
	}
	// Shrinking estimates clamps at the runtime so the invariant holds.
	tenth, err := ScaleEstimates(set, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tenth.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ScaleEstimates(set, 0); err == nil {
		t.Fatal("factor 0 accepted")
	}
}

func TestConcatenate(t *testing.T) {
	a, err := KTH.Generate(100, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KTH.Generate(100, rng.New(34))
	if err != nil {
		t.Fatal(err)
	}
	both, err := Concatenate(a, b, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if err := both.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(both.Jobs) != 200 {
		t.Fatalf("jobs = %d", len(both.Jobs))
	}
	_, lastA := a.Span()
	if got := both.Jobs[100].Submit; got != lastA+3600+b.Jobs[0].Submit {
		t.Fatalf("phase 2 starts at %d", got)
	}
}

func TestConcatenateErrors(t *testing.T) {
	a, _ := KTH.Generate(10, rng.New(35))
	c, _ := CTC.Generate(10, rng.New(36))
	if _, err := Concatenate(a, c, 0); err == nil {
		t.Error("mismatched machines accepted")
	}
	b, _ := KTH.Generate(10, rng.New(37))
	if _, err := Concatenate(a, b, -1); err == nil {
		t.Error("negative gap accepted")
	}
}
