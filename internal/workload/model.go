// Package workload synthesises job sets modelled on the four Parallel
// Workloads Archive traces the paper evaluates (CTC, KTH, LANL, SDSC).
//
// The paper does not replay the raw traces; it generates synthetic job
// sets "based on" them (ten sets of 10,000 jobs per trace). The archive is
// not reachable from this offline environment, so the models here are
// calibrated to every statistic the paper publishes in its Table 2: machine
// size, width min/avg/max, estimated and actual run time min/avg/max, the
// average overestimation factor, and interarrival min/avg/max. Widths and
// run times follow clamped log-normal distributions (the standard model for
// production supercomputer workloads); interarrival times follow a bursty
// two-phase hyper-exponential; LANL widths are powers of two from 32 to
// 1024, matching the CM-5 partition sizes. Real SWF trace files can be
// substituted via package swf.
package workload

import (
	"fmt"
	"math"
	"sync"

	"dynp/internal/job"
	"dynp/internal/rng"
	"dynp/internal/stats"
)

// Model is a parametric description of one trace, sufficient to generate
// synthetic job sets with the published characteristics.
type Model struct {
	Name      string
	Machine   int // available processors on the modelled machine
	TraceJobs int // jobs in the original trace (informational, Table 2)

	// Width (requested processors).
	WidthMin, WidthMax int
	WidthAvg           float64
	WidthSigma         float64 // spread of the underlying log-normal
	WidthPow2Frac      float64 // fraction of widths snapped to powers of two
	WidthPow2Only      bool    // widths are powers of two only (LANL/CM-5)

	// Actual run time, seconds. The generator enforces >= 1 s so the
	// planning semantics (kill at estimate) stay well defined.
	ActMin, ActMax int64
	ActAvg         float64
	ActSigma       float64

	// Estimated run time, seconds. Estimates are derived from actual run
	// times through a random overestimation factor >= 1 with mean
	// Overest, then clamped into [EstMin, EstMax] without undercutting
	// the actual run time.
	EstMin, EstMax int64
	EstAvg         float64
	Overest        float64 // EstAvg / ActAvg in the original trace

	// Interarrival time, seconds.
	IATAvg   float64
	IATMax   int64
	IATBurst float64 // fraction of the mean carried by rare long gaps

	// LoadTarget is the offered load (mean job area / (machine size x
	// mean interarrival time)) the generator calibrates to, taken from
	// the utilization the paper observes at shrinking factor 1.0 (its
	// Table 4), where the system is unsaturated and utilization equals
	// offered load. Table 2's marginal means alone understate E[width x
	// runtime] for LANL and SDSC — the traces correlate width with run
	// time — so the generator couples the two through a latent normal
	// whose correlation is solved to hit this target. Zero disables the
	// calibration (correlation 0).
	LoadTarget float64
}

// The four trace models with the characteristics of the paper's Table 2.
var (
	// CTC: Cornell Theory Center IBM SP2, 430 processors.
	CTC = Model{
		Name: "CTC", Machine: 430, TraceJobs: 79302,
		WidthMin: 1, WidthMax: 336, WidthAvg: 10.72, WidthSigma: 1.3, WidthPow2Frac: 0.75,
		ActMin: 1, ActMax: 64800, ActAvg: 10958, ActSigma: 1.9,
		EstMin: 1, EstMax: 64800, EstAvg: 24324, Overest: 2.220,
		IATAvg: 369, IATMax: 164472, IATBurst: 0.35,
		LoadTarget: 0.755,
	}
	// KTH: Swedish Royal Institute of Technology IBM SP2, 100 processors.
	KTH = Model{
		Name: "KTH", Machine: 100, TraceJobs: 28490,
		WidthMin: 1, WidthMax: 100, WidthAvg: 7.66, WidthSigma: 1.2, WidthPow2Frac: 0.75,
		ActMin: 1, ActMax: 216000, ActAvg: 8858, ActSigma: 2.1,
		EstMin: 60, EstMax: 216000, EstAvg: 13678, Overest: 1.544,
		IATAvg: 1031, IATMax: 327952, IATBurst: 0.40,
		LoadTarget: 0.688,
	}
	// LANL: Los Alamos CM-5, 1024 processors, partition widths 32..1024.
	LANL = Model{
		Name: "LANL", Machine: 1024, TraceJobs: 201387,
		WidthMin: 32, WidthMax: 1024, WidthAvg: 104.95, WidthSigma: 1.0, WidthPow2Only: true,
		ActMin: 1, ActMax: 25200, ActAvg: 1659, ActSigma: 1.8,
		EstMin: 1, EstMax: 30000, EstAvg: 3683, Overest: 2.220,
		IATAvg: 509, IATMax: 201006, IATBurst: 0.35,
		LoadTarget: 0.636,
	}
	// SDSC: San Diego Supercomputer Center IBM SP2, 128 processors.
	SDSC = Model{
		Name: "SDSC", Machine: 128, TraceJobs: 67667,
		WidthMin: 1, WidthMax: 128, WidthAvg: 10.54, WidthSigma: 1.25, WidthPow2Frac: 0.75,
		ActMin: 1, ActMax: 172800, ActAvg: 6077, ActSigma: 2.0,
		EstMin: 2, EstMax: 172800, EstAvg: 14344, Overest: 2.360,
		IATAvg: 934, IATMax: 79503, IATBurst: 0.40,
		LoadTarget: 0.786,
	}
)

// Models returns the four paper traces in the paper's order.
func Models() []Model { return []Model{CTC, KTH, LANL, SDSC} }

// ByName looks a model up by its trace name.
func ByName(name string) (Model, error) {
	for _, m := range Models() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("workload: unknown trace %q", name)
}

// Validate checks the model parameters for internal consistency.
func (m Model) Validate() error {
	switch {
	case m.Machine < 1:
		return fmt.Errorf("workload: %s: machine %d < 1", m.Name, m.Machine)
	case m.WidthMin < 1 || m.WidthMax > m.Machine || m.WidthMin > m.WidthMax:
		return fmt.Errorf("workload: %s: width bounds [%d,%d] invalid for machine %d",
			m.Name, m.WidthMin, m.WidthMax, m.Machine)
	case m.WidthAvg <= float64(m.WidthMin) || m.WidthAvg >= float64(m.WidthMax):
		return fmt.Errorf("workload: %s: width avg %v outside (%d,%d)",
			m.Name, m.WidthAvg, m.WidthMin, m.WidthMax)
	case m.ActAvg <= 1 || m.ActAvg >= float64(m.ActMax):
		return fmt.Errorf("workload: %s: actual runtime avg %v invalid", m.Name, m.ActAvg)
	case m.Overest < 1:
		return fmt.Errorf("workload: %s: overestimation factor %v < 1", m.Name, m.Overest)
	case m.IATAvg <= 0 || m.IATMax < 1:
		return fmt.Errorf("workload: %s: interarrival parameters invalid", m.Name)
	}
	return nil
}

// generator bundles the fitted distributions of one model.
type generator struct {
	m     Model
	width widthSampler
	// Actual run times are a clamped log-normal; the pieces are kept
	// separate so runs can be generated from an explicit latent normal
	// deviate (for the width correlation).
	actLN        stats.LogNormal
	actLo, actHi float64
	iat          stats.Clamped
	// corr is the correlation of the latent normals behind width and
	// actual run time, calibrated to the model's LoadTarget.
	corr float64
	// overShift is the mean of the exponential part of the
	// overestimation factor F = 1 + Exp(overShift), calibrated so the
	// clamped mean estimate hits EstAvg.
	overShift float64
}

// widthSampler maps a latent standard normal deviate (plus an independent
// uniform used for power-of-two snapping) to a width. Routing widths
// through a latent normal lets the generator correlate width with run time
// while leaving both marginals unchanged.
type widthSampler interface {
	fromLatent(z, usnap float64) int
}

// sampleAct maps a latent normal deviate to an actual run time.
func (g *generator) sampleAct(z float64) float64 {
	return math.Min(g.actHi, math.Max(g.actLo, g.actLN.FromNormal(z)))
}

// sampleJob draws (width, actual run time) with the calibrated
// correlation from three independent primitives: the width's latent
// normal zw, the snapping uniform usnap, and an independent normal z2.
func (g *generator) sampleJob(zw, usnap, z2 float64) (width int, act float64) {
	width = g.width.fromLatent(zw, usnap)
	zr := g.corr*zw + math.Sqrt(1-g.corr*g.corr)*z2
	return width, g.sampleAct(zr)
}

// newGenerator fits all distributions; it fails when a published mean is
// unattainable within its published bounds.
func (m Model) newGenerator() (*generator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	g := &generator{m: m}

	var err error
	if m.WidthPow2Only {
		g.width, err = fitPow2(m.WidthMin, m.WidthMax, m.WidthAvg)
	} else {
		g.width, err = fitContinuousWidth(m)
	}
	if err != nil {
		return nil, fmt.Errorf("workload: %s: width: %w", m.Name, err)
	}

	actLo := float64(m.ActMin)
	if actLo < 1 {
		actLo = 1
	}
	act, err := stats.FitClampedLogNormal(m.ActAvg, m.ActSigma, actLo, float64(m.ActMax))
	if err != nil {
		return nil, fmt.Errorf("workload: %s: actual runtime: %w", m.Name, err)
	}
	g.actLN = act.D.(stats.LogNormal)
	g.actLo, g.actHi = act.Lo, act.Hi

	// Interarrival times: hyper-exponential clamped to the published
	// maximum. Clamping barely moves the mean because IATMax is hundreds
	// of times the mean.
	g.iat = stats.Clamped{
		D:  stats.NewBurstyIAT(m.IATAvg, m.IATBurst),
		Lo: 0, Hi: float64(m.IATMax),
	}

	if err := g.calibrateCorrelation(); err != nil {
		return nil, fmt.Errorf("workload: %s: load: %w", m.Name, err)
	}
	if err := g.calibrateOverestimation(); err != nil {
		return nil, fmt.Errorf("workload: %s: estimates: %w", m.Name, err)
	}
	return g, nil
}

// calibrateCorrelation solves for the latent width/run-time correlation so
// that the mean job area E[width x runtime] equals LoadTarget x machine x
// mean interarrival time — the offered load the paper's utilization at
// shrinking factor 1.0 implies. The mean area is monotone increasing in
// the correlation, so bisection over a fixed Monte Carlo sample converges.
func (g *generator) calibrateCorrelation() error {
	m := g.m
	if m.LoadTarget == 0 {
		g.corr = 0
		return nil
	}
	target := m.LoadTarget * float64(m.Machine) * m.IATAvg
	// Heavy-tailed run times make the mean area a high-variance
	// estimator; a large fixed sample keeps the calibration error well
	// below the paper-comparison tolerances.
	const n = 200000
	r := rng.New(0xc0a11a7e).Derive(hashName(m.Name))
	zw := make([]float64, n)
	us := make([]float64, n)
	z2 := make([]float64, n)
	for i := 0; i < n; i++ {
		zw[i] = r.NormFloat64()
		us[i] = r.Float64()
		z2[i] = r.NormFloat64()
	}
	meanArea := func(rho float64) float64 {
		g.corr = rho
		var sum float64
		for i := 0; i < n; i++ {
			w, act := g.sampleJob(zw[i], us[i], z2[i])
			sum += float64(w) * act
		}
		return sum / n
	}
	const bound = 0.999
	if meanArea(bound) < target {
		return fmt.Errorf("load target %v unattainable even at full correlation (max mean area %v, need %v)",
			m.LoadTarget, meanArea(bound), target)
	}
	if meanArea(-bound) > target {
		return fmt.Errorf("load target %v below the anti-correlated floor", m.LoadTarget)
	}
	lo, hi := -bound, bound
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if meanArea(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	g.corr = (lo + hi) / 2
	return nil
}

// calibrateOverestimation solves for the overestimation scale so that the
// *clamped* mean estimate hits the published EstAvg. A naive scale of
// Overest-1 undershoots badly on traces whose actual run times pile up
// near the estimate cap (the clamp eats the overestimation tail), so the
// scale is found by bisection over a fixed Monte Carlo sample drawn from a
// derived calibration stream — deterministic for a given model.
func (g *generator) calibrateOverestimation() error {
	m := g.m
	if m.Overest <= 1 {
		g.overShift = 0
		return nil
	}
	const n = 20000
	r := rng.New(0xca11b8a7e).Derive(hashName(m.Name))
	acts := make([]float64, n)
	exps := make([]float64, n)
	for i := 0; i < n; i++ {
		acts[i] = g.sampleAct(r.NormFloat64())
		exps[i] = r.ExpFloat64()
	}
	meanEst := func(shift float64) float64 {
		var sum float64
		for i := 0; i < n; i++ {
			est := acts[i] * (1 + shift*exps[i])
			if est < float64(m.EstMin) {
				est = float64(m.EstMin)
			}
			if est > float64(m.EstMax) {
				est = float64(m.EstMax)
			}
			sum += est
		}
		return sum / n
	}
	// meanEst is increasing in shift with limit EstMax > EstAvg, so a
	// solution exists whenever the unshifted mean lies below the target.
	lo, hi := 0.0, m.Overest-1
	for meanEst(hi) < m.EstAvg {
		hi *= 2
		if hi > 1e6 {
			return fmt.Errorf("cannot reach estimate mean %v", m.EstAvg)
		}
	}
	if meanEst(lo) > m.EstAvg {
		return fmt.Errorf("estimate mean %v below the no-overestimation floor %v",
			m.EstAvg, meanEst(lo))
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if meanEst(mid) < m.EstAvg {
			lo = mid
		} else {
			hi = mid
		}
	}
	g.overShift = (lo + hi) / 2
	return nil
}

// genCache memoises fitted generators per model value: the distribution
// fits and the two Monte Carlo calibrations are deterministic functions of
// the model, and generators are immutable after construction, so sharing
// them (also across goroutines) is safe.
var genCache sync.Map // Model -> *generator

func (m Model) cachedGenerator() (*generator, error) {
	if g, ok := genCache.Load(m); ok {
		return g.(*generator), nil
	}
	g, err := m.newGenerator()
	if err != nil {
		return nil, err
	}
	actual, _ := genCache.LoadOrStore(m, g)
	return actual.(*generator), nil
}

// Generate synthesises a job set of n jobs from the model using the given
// random stream. Output jobs are sorted by submission time with IDs in
// submission order, as the simulator requires.
func (m Model) Generate(n int, r *rng.Stream) (*job.Set, error) {
	g, err := m.cachedGenerator()
	if err != nil {
		return nil, err
	}
	set := &job.Set{
		Name:    m.Name,
		Machine: m.Machine,
		Jobs:    make([]*job.Job, n),
	}
	var clock int64
	for i := 0; i < n; i++ {
		if i > 0 {
			clock += int64(g.iat.Sample(r) + 0.5)
		}
		width, actF := g.sampleJob(r.NormFloat64(), r.Float64(), r.NormFloat64())
		act := int64(actF + 0.5)
		if act < 1 {
			act = 1
		}
		over := 1 + g.overShift*r.ExpFloat64()
		est := int64(float64(act)*over + 0.5)
		if est < m.EstMin {
			est = m.EstMin
		}
		if est > m.EstMax {
			est = m.EstMax
		}
		if est < act {
			est = act
		}
		set.Jobs[i] = &job.Job{
			ID:       job.ID(i + 1),
			Submit:   clock,
			Width:    width,
			Estimate: est,
			Runtime:  act,
		}
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated set invalid: %w", err)
	}
	return set, nil
}

// GenerateSets synthesises the paper's per-trace input: `sets` independent
// job sets of n jobs each. Set k is a pure function of (model name, seed,
// k) and independent of the other sets.
func (m Model) GenerateSets(sets, n int, seed uint64) ([]*job.Set, error) {
	base := rng.New(seed)
	out := make([]*job.Set, sets)
	for k := range out {
		r := base.Derive(hashName(m.Name), uint64(k))
		s, err := m.Generate(n, r)
		if err != nil {
			return nil, err
		}
		s.Name = fmt.Sprintf("%s/set%02d", m.Name, k)
		out[k] = s
	}
	return out, nil
}

// hashName folds a trace name into a derivation label.
func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// --- width samplers ---

// contWidth samples a clamped log-normal width, optionally snapping a
// fraction of samples to the nearest power of two (production traces show
// strong power-of-two preferences).
type contWidth struct {
	ln       stats.LogNormal
	min, max int
	pow2Frac float64
}

func fitContinuousWidth(m Model) (widthSampler, error) {
	d, err := stats.FitClampedLogNormal(m.WidthAvg, m.WidthSigma,
		float64(m.WidthMin), float64(m.WidthMax))
	if err != nil {
		return nil, err
	}
	return &contWidth{ln: d.D.(stats.LogNormal), min: m.WidthMin, max: m.WidthMax,
		pow2Frac: m.WidthPow2Frac}, nil
}

func (w *contWidth) fromLatent(z, usnap float64) int {
	v := int(w.ln.FromNormal(z) + 0.5)
	if w.pow2Frac > 0 && usnap < w.pow2Frac {
		v = nearestPow2(v)
	}
	if v < w.min {
		v = w.min
	}
	if v > w.max {
		v = w.max
	}
	return v
}

// nearestPow2 rounds v to the nearest power of two in log space.
func nearestPow2(v int) int {
	if v <= 1 {
		return 1
	}
	exp := math.Log2(float64(v))
	return 1 << int(exp+0.5)
}

// pow2Width samples from the discrete power-of-two partition sizes of the
// LANL CM-5 with geometric weights q^k fitted to the published mean.
type pow2Width struct {
	sizes []int
	cum   []float64 // cumulative probabilities
}

func fitPow2(min, max int, target float64) (widthSampler, error) {
	var sizes []int
	for v := min; v <= max; v *= 2 {
		sizes = append(sizes, v)
	}
	if len(sizes) < 2 {
		return nil, fmt.Errorf("degenerate power-of-two range [%d,%d]", min, max)
	}
	mean := func(q float64) float64 {
		var num, den float64
		w := 1.0
		for _, v := range sizes {
			num += float64(v) * w
			den += w
			w *= q
		}
		return num / den
	}
	if target <= float64(sizes[0]) || target >= mean(1) {
		return nil, fmt.Errorf("target width mean %v unattainable over %v", target, sizes)
	}
	lo, hi := 1e-9, 1.0 // mean(q) is increasing in q
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if mean(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	q := (lo + hi) / 2
	p := &pow2Width{sizes: sizes, cum: make([]float64, len(sizes))}
	var den float64
	w := 1.0
	for range sizes {
		den += w
		w *= q
	}
	w = 1.0
	var acc float64
	for i := range sizes {
		acc += w / den
		p.cum[i] = acc
		w *= q
	}
	p.cum[len(p.cum)-1] = 1 // guard against rounding
	return p, nil
}

func (p *pow2Width) fromLatent(z, _ float64) int {
	u := stats.StdNormCDF(z)
	for i, c := range p.cum {
		if u < c {
			return p.sizes[i]
		}
	}
	return p.sizes[len(p.sizes)-1]
}
