package workload

import (
	"math"
	"testing"

	"dynp/internal/rng"
)

func TestModelsValidate(t *testing.T) {
	for _, m := range Models() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"CTC", "KTH", "LANL", "SDSC"} {
		m, err := ByName(want)
		if err != nil || m.Name != want {
			t.Errorf("ByName(%q) = %v, %v", want, m.Name, err)
		}
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Error("ByName accepted junk")
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	mutations := []func(*Model){
		func(m *Model) { m.Machine = 0 },
		func(m *Model) { m.WidthMin = 0 },
		func(m *Model) { m.WidthMax = m.Machine + 1 },
		func(m *Model) { m.WidthAvg = float64(m.WidthMax) + 1 },
		func(m *Model) { m.ActAvg = 0 },
		func(m *Model) { m.Overest = 0.5 },
		func(m *Model) { m.IATAvg = 0 },
	}
	for i, mutate := range mutations {
		m := CTC
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateProducesValidSets(t *testing.T) {
	for _, m := range Models() {
		set, err := m.Generate(2000, rng.New(1))
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if len(set.Jobs) != 2000 {
			t.Fatalf("%s: %d jobs", m.Name, len(set.Jobs))
		}
		if set.Machine != m.Machine {
			t.Fatalf("%s: machine %d", m.Name, set.Machine)
		}
	}
}

// TestTable2Calibration checks the generated workloads against the paper's
// Table 2 statistics: the calibrated means must land within a modest
// tolerance of the published values, and hard bounds must hold exactly.
func TestTable2Calibration(t *testing.T) {
	const n = 20000
	for _, m := range Models() {
		set, err := m.Generate(n, rng.New(7))
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		c := Characterize(set)

		within := func(name string, got, want, tol float64) {
			if want == 0 {
				return
			}
			if math.Abs(got-want)/want > tol {
				t.Errorf("%s: %s = %.2f, want %.2f (±%.0f%%)",
					m.Name, name, got, want, tol*100)
			}
		}
		within("width mean", c.Width.Mean, m.WidthAvg, 0.15)
		within("actual runtime mean", c.Act.Mean, m.ActAvg, 0.10)
		within("estimate mean", c.Est.Mean, m.EstAvg, 0.15)
		within("overestimation factor", c.Overest, m.Overest, 0.15)
		within("interarrival mean", c.IAT.Mean, m.IATAvg, 0.10)

		if c.Width.Min < float64(m.WidthMin) || c.Width.Max > float64(m.WidthMax) {
			t.Errorf("%s: width range [%v,%v] outside [%d,%d]",
				m.Name, c.Width.Min, c.Width.Max, m.WidthMin, m.WidthMax)
		}
		if c.Act.Max > float64(m.ActMax) {
			t.Errorf("%s: actual runtime max %v above %d", m.Name, c.Act.Max, m.ActMax)
		}
		if c.Est.Max > float64(m.EstMax) || c.Est.Min < float64(m.EstMin) {
			t.Errorf("%s: estimate range [%v,%v] outside [%d,%d]",
				m.Name, c.Est.Min, c.Est.Max, m.EstMin, m.EstMax)
		}
	}
}

func TestEstimatesNeverBelowRuntime(t *testing.T) {
	for _, m := range Models() {
		set, err := m.Generate(5000, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range set.Jobs {
			if j.Estimate < j.Runtime {
				t.Fatalf("%s: %s has estimate below runtime", m.Name, j)
			}
		}
	}
}

func TestLANLWidthsArePowersOfTwo(t *testing.T) {
	set, err := LANL.Generate(5000, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range set.Jobs {
		if j.Width < 32 || j.Width > 1024 || j.Width&(j.Width-1) != 0 {
			t.Fatalf("LANL width %d not a CM-5 partition size", j.Width)
		}
	}
}

func TestGenerateSetsIndependentAndReproducible(t *testing.T) {
	a, err := CTC.GenerateSets(3, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CTC.GenerateSets(3, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		for i := range a[k].Jobs {
			x, y := a[k].Jobs[i], b[k].Jobs[i]
			if *x != *y {
				t.Fatalf("set %d job %d not reproducible", k, i)
			}
		}
	}
	// Different sets differ.
	same := 0
	for i := range a[0].Jobs {
		if a[0].Jobs[i].Estimate == a[1].Jobs[i].Estimate {
			same++
		}
	}
	if same == len(a[0].Jobs) {
		t.Fatal("sets 0 and 1 are identical")
	}
	// Different seeds differ.
	c, err := CTC.GenerateSets(1, 500, 43)
	if err != nil {
		t.Fatal(err)
	}
	same = 0
	for i := range a[0].Jobs {
		if a[0].Jobs[i].Estimate == c[0].Jobs[i].Estimate {
			same++
		}
	}
	if same == len(a[0].Jobs) {
		t.Fatal("different seeds produced identical sets")
	}
}

func TestTracesDiffer(t *testing.T) {
	// The four models must produce distinguishable workloads (different
	// mean widths and runtimes).
	r := rng.New(11)
	var widths, runs []float64
	for _, m := range Models() {
		set, err := m.Generate(3000, r.Derive(hashName(m.Name)))
		if err != nil {
			t.Fatal(err)
		}
		c := Characterize(set)
		widths = append(widths, c.Width.Mean)
		runs = append(runs, c.Act.Mean)
	}
	for i := 0; i < len(widths); i++ {
		for k := i + 1; k < len(widths); k++ {
			if math.Abs(widths[i]-widths[k]) < 0.5 && math.Abs(runs[i]-runs[k]) < 100 {
				t.Fatalf("traces %d and %d statistically indistinguishable", i, k)
			}
		}
	}
}

// TestOfferedLoadCalibration checks that the generated mean job area hits
// the offered-load target derived from the paper's utilization at
// shrinking factor 1.0, for every trace.
func TestOfferedLoadCalibration(t *testing.T) {
	const n = 100000
	for _, m := range Models() {
		set, err := m.Generate(n, rng.New(21))
		if err != nil {
			t.Fatal(err)
		}
		var area float64
		for _, j := range set.Jobs {
			area += float64(j.Area())
		}
		load := (area / n) / (float64(m.Machine) * m.IATAvg)
		if math.Abs(load-m.LoadTarget)/m.LoadTarget > 0.10 {
			t.Errorf("%s: offered load %.3f, want %.3f", m.Name, load, m.LoadTarget)
		}
	}
}

// TestWidthRuntimeCorrelation verifies that LANL and SDSC jobs exhibit the
// positive width/run-time correlation the load calibration introduces,
// while the marginals (checked elsewhere) stay on target.
func TestWidthRuntimeCorrelation(t *testing.T) {
	for _, m := range []Model{LANL, SDSC} {
		set, err := m.Generate(10000, rng.New(22))
		if err != nil {
			t.Fatal(err)
		}
		var sw, sr, sww, srr, swr float64
		n := float64(len(set.Jobs))
		for _, j := range set.Jobs {
			w, r := float64(j.Width), float64(j.Runtime)
			sw += w
			sr += r
			sww += w * w
			srr += r * r
			swr += w * r
		}
		corr := (swr/n - sw/n*sr/n) /
			math.Sqrt((sww/n-sw/n*sw/n)*(srr/n-sr/n*sr/n))
		if corr < 0.05 {
			t.Errorf("%s: width/runtime correlation %.3f not positive", m.Name, corr)
		}
	}
}

func TestNearestPow2(t *testing.T) {
	// Rounding happens in log space: 12 is nearer to 16 than to 8 there.
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 4, 6: 8, 12: 16, 48: 64, 96: 128, 100: 128}
	for in, want := range cases {
		if got := nearestPow2(in); got != want {
			t.Errorf("nearestPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestCharacterizeSmallSet(t *testing.T) {
	set, err := KTH.Generate(2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	c := Characterize(set)
	if c.Jobs != 2 || c.IAT.N != 1 {
		t.Fatalf("characteristics = %+v", c)
	}
}
