package workload

import (
	"dynp/internal/job"
	"dynp/internal/stats"
)

// Characteristics summarises a job set with the statistics of the paper's
// Table 2, so generated (or imported SWF) workloads can be compared against
// the published trace properties.
type Characteristics struct {
	Name    string
	Jobs    int
	Machine int

	Width   stats.Summary
	Est     stats.Summary // estimated run times, seconds
	Act     stats.Summary // actual run times, seconds
	IAT     stats.Summary // interarrival times, seconds
	Area    stats.Summary // actual areas (runtime x width), processor-seconds
	Overest float64       // mean estimated / mean actual run time
}

// OfferedLoad returns mean job area / (machine size x mean interarrival
// time) — the long-run utilization an infinitely patient scheduler could
// reach on this workload.
func (c Characteristics) OfferedLoad() float64 {
	den := float64(c.Machine) * c.IAT.Mean
	if den == 0 {
		return 0
	}
	return c.Area.Mean / den
}

// Characterize computes the Table 2 statistics of a job set.
func Characterize(s *job.Set) Characteristics {
	n := len(s.Jobs)
	widths := make([]float64, n)
	ests := make([]float64, n)
	acts := make([]float64, n)
	areas := make([]float64, n)
	var iats []float64
	for i, j := range s.Jobs {
		widths[i] = float64(j.Width)
		ests[i] = float64(j.Estimate)
		acts[i] = float64(j.Runtime)
		areas[i] = float64(j.Area())
		if i > 0 {
			iats = append(iats, float64(j.Submit-s.Jobs[i-1].Submit))
		}
	}
	c := Characteristics{
		Name:    s.Name,
		Jobs:    n,
		Machine: s.Machine,
		Width:   stats.Summarize(widths),
		Est:     stats.Summarize(ests),
		Act:     stats.Summarize(acts),
		IAT:     stats.Summarize(iats),
		Area:    stats.Summarize(areas),
	}
	if c.Act.Mean > 0 {
		c.Overest = c.Est.Mean / c.Act.Mean
	}
	return c
}
