package workload

import (
	"fmt"

	"dynp/internal/job"
)

// Transforms applied to job sets for sensitivity studies. Each returns a
// deep copy; the input set is never modified.

// PerfectEstimates returns a copy of the set in which every estimate
// equals the actual run time. SJF/LJF then order by true length and the
// planner's reservations are exact — the upper bound on what better user
// estimates could buy (a classic sensitivity study for backfilling
// schedulers, and the natural companion to the paper's overestimation
// factors).
func PerfectEstimates(s *job.Set) *job.Set {
	out := &job.Set{Name: s.Name + "/perfect-estimates", Machine: s.Machine,
		Jobs: make([]*job.Job, len(s.Jobs))}
	for i, j := range s.Jobs {
		c := *j
		c.Estimate = c.Runtime
		out.Jobs[i] = &c
	}
	return out
}

// ScaleEstimates returns a copy with every estimate multiplied by factor
// (clamped below at the actual run time), interpolating between trace
// estimates (factor 1) and arbitrarily worse ones.
func ScaleEstimates(s *job.Set, factor float64) (*job.Set, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("workload: estimate scale factor %v must be positive", factor)
	}
	out := &job.Set{Name: fmt.Sprintf("%s/est-x%.2f", s.Name, factor),
		Machine: s.Machine, Jobs: make([]*job.Job, len(s.Jobs))}
	for i, j := range s.Jobs {
		c := *j
		c.Estimate = int64(float64(j.Estimate)*factor + 0.5)
		if c.Estimate < c.Runtime {
			c.Estimate = c.Runtime
		}
		out.Jobs[i] = &c
	}
	return out, nil
}

// Concatenate appends the jobs of b after those of a, shifting b's
// submission times so that b starts gap seconds after a's last
// submission. Machine sizes must match. It builds workloads with abrupt
// phase changes — the situation dynamic policy switching is made for.
func Concatenate(a, b *job.Set, gap int64) (*job.Set, error) {
	if a.Machine != b.Machine {
		return nil, fmt.Errorf("workload: cannot concatenate machines of %d and %d processors",
			a.Machine, b.Machine)
	}
	if gap < 0 {
		return nil, fmt.Errorf("workload: negative gap %d", gap)
	}
	_, last := a.Span()
	offset := last + gap
	out := &job.Set{Name: a.Name + "+" + b.Name, Machine: a.Machine,
		Jobs: make([]*job.Job, 0, len(a.Jobs)+len(b.Jobs))}
	id := job.ID(0)
	for _, j := range a.Jobs {
		c := *j
		id++
		c.ID = id
		out.Jobs = append(out.Jobs, &c)
	}
	for _, j := range b.Jobs {
		c := *j
		id++
		c.ID = id
		c.Submit += offset
		out.Jobs = append(out.Jobs, &c)
	}
	return out, nil
}
