package workload

import (
	"fmt"
	"math"

	"dynp/internal/job"
)

// Transforms applied to job sets for sensitivity studies. Each returns a
// deep copy; the input set is never modified.

// PerfectEstimates returns a copy of the set in which every estimate
// equals the actual run time. SJF/LJF then order by true length and the
// planner's reservations are exact — the upper bound on what better user
// estimates could buy (a classic sensitivity study for backfilling
// schedulers, and the natural companion to the paper's overestimation
// factors).
func PerfectEstimates(s *job.Set) *job.Set {
	out := &job.Set{Name: s.Name + "/perfect-estimates", Machine: s.Machine,
		Jobs: make([]*job.Job, len(s.Jobs))}
	for i, j := range s.Jobs {
		c := *j
		c.Estimate = c.Runtime
		out.Jobs[i] = &c
	}
	return out
}

// ScaleEstimates returns a copy with every estimate multiplied by factor
// (clamped below at the actual run time, and always at least 1 second),
// interpolating between trace estimates (factor 1) and arbitrarily worse
// ones. Shrinking factors on short jobs round toward zero, and a
// zero-runtime trace row gives the run-time clamp no floor — but every
// planner input needs a positive estimate, so the result never leaves
// [1, MaxInt64].
func ScaleEstimates(s *job.Set, factor float64) (*job.Set, error) {
	if !(factor > 0) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("workload: estimate scale factor %v must be positive and finite", factor)
	}
	out := &job.Set{Name: fmt.Sprintf("%s/est-x%.2f", s.Name, factor),
		Machine: s.Machine, Jobs: make([]*job.Job, len(s.Jobs))}
	for i, j := range s.Jobs {
		c := *j
		if scaled := float64(j.Estimate)*factor + 0.5; scaled >= float64(math.MaxInt64) {
			// Conversion of an out-of-range float64 to int64 is
			// implementation-defined; saturate explicitly.
			c.Estimate = math.MaxInt64
		} else {
			c.Estimate = int64(scaled)
		}
		if c.Estimate < c.Runtime {
			c.Estimate = c.Runtime
		}
		if c.Estimate < 1 {
			c.Estimate = 1
		}
		out.Jobs[i] = &c
	}
	return out, nil
}

// Concatenate appends the jobs of b after those of a, shifting b's
// submission times so that b starts gap seconds after a's last
// submission. Machine sizes must match. It builds workloads with abrupt
// phase changes — the situation dynamic policy switching is made for.
func Concatenate(a, b *job.Set, gap int64) (*job.Set, error) {
	if a.Machine != b.Machine {
		return nil, fmt.Errorf("workload: cannot concatenate machines of %d and %d processors",
			a.Machine, b.Machine)
	}
	if gap < 0 {
		return nil, fmt.Errorf("workload: negative gap %d", gap)
	}
	_, last := a.Span()
	offset := last + gap
	out := &job.Set{Name: a.Name + "+" + b.Name, Machine: a.Machine,
		Jobs: make([]*job.Job, 0, len(a.Jobs)+len(b.Jobs))}
	id := job.ID(0)
	for _, j := range a.Jobs {
		c := *j
		id++
		c.ID = id
		out.Jobs = append(out.Jobs, &c)
	}
	for _, j := range b.Jobs {
		c := *j
		id++
		c.ID = id
		c.Submit += offset
		out.Jobs = append(out.Jobs, &c)
	}
	return out, nil
}
