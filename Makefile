# Development targets for the dynp reproduction. Everything is plain Go;
# the Makefile only bundles the common invocations. `make ci` mirrors the
# GitHub Actions pipeline (.github/workflows/ci.yml) locally.

GO ?= go

.PHONY: all ci build vet fmt-check test race soak soak-disk bench bench-smoke bench-tuner bench-plan bench-plan-check bench-sim bench-sim-check bench-scale bench-scale-check bench-recover bench-recover-check bench-quote bench-quote-check fuzz repro repro-full ablations golden golden-check golden-check-registered golden-check-speculate golden-check-full clean

all: build vet test

# Everything the CI workflow gates merges on, minus the smoke jobs.
ci: build vet fmt-check test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-clean (mirrored by the CI build job).
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt -l found unformatted files:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

# -shuffle=on randomises test (and package-level example) execution
# order, flushing out inter-test state dependencies; the seed is printed
# on failure for reproduction with -shuffle=<seed>.
test:
	$(GO) test -shuffle=on ./...

# Race-check everything. The concurrent pieces — the work-stealing shard
# pool, the experiment sweep, parallel what-if planning in the tuner,
# sim.RunParallel, the RMS snapshot readers, the chaos harness — all have
# tests that exercise real concurrency, and the sequential packages are
# cheap enough that whole-module coverage costs little extra.
race:
	$(GO) test -race ./...

# Deterministic chaos soak: concurrent clients through a fault-injecting
# network while processors fail and recover, race detector on. The fault
# schedules are seeded, so a failure here reproduces exactly.
soak:
	$(GO) test -race -count=1 -run TestChaosSoak -v ./internal/rms/chaos/

# Crash-recovery soak: a real dynpd process under protocol load with
# seeded disk faults eating at its journal, kill -9'd and restarted every
# cycle. Asserts byte-identical restored state and no lost or
# double-finished jobs. Seeded, so a failure reproduces.
soak-disk:
	$(GO) test -race -count=1 -run TestDiskFaultRecoverySoak -v ./internal/rms/chaos/

bench:
	$(GO) test -bench=. -benchmem ./...

# One-iteration pass over the self-tuning benchmarks; CI uploads the
# output as an artifact for trajectory tracking.
bench-smoke:
	$(GO) test -bench=SelfTuner -benchtime=1x ./... | tee bench-smoke.txt

# Refresh the committed planning-cost snapshot.
bench-tuner:
	$(GO) run ./cmd/benchtuner -out BENCH_tuner.json

# Refresh the committed allocation snapshot of the what-if planning path
# (pooled vs unpooled builds, memoized vs rebuilt tuner steps).
bench-plan:
	$(GO) run ./cmd/benchplan -out BENCH_plan.json

# Fail when the tuner step's allocs/op regressed >10% against the
# committed BENCH_plan.json. CI runs this in the bench-smoke job.
bench-plan-check:
	$(GO) run ./cmd/benchplan -check BENCH_plan.json

# Refresh the committed simulation-throughput snapshot: indexed-vs-linear
# profile micro-benchmarks plus end-to-end sim.Run rates at 1k/10k jobs.
bench-sim:
	$(GO) run ./cmd/benchsim -out BENCH_sim.json

# Fail when an indexed-over-linear speedup ratio (1024+ steps) or the
# 1k->10k throughput scaling regressed >10% against the committed
# BENCH_sim.json. Ratios, not absolute ns, so the gate is machine-neutral.
# CI runs this in the bench-smoke job.
bench-sim-check:
	$(GO) run ./cmd/benchsim -check BENCH_sim.json

# Refresh the committed multi-core scaling snapshot: experiment-sweep and
# sim.RunParallel jobs/s plus tuner plan latency at GOMAXPROCS 1/2/4/N.
bench-scale:
	$(GO) run ./cmd/benchscale -out BENCH_scale.json

# Fail when a p-core-over-1-core scaling ratio regressed >10% against the
# committed BENCH_scale.json, or the experiment sweep scales under 2x at
# 4 cores. Ratios only, and only for core counts the machine physically
# has, so the gate is machine-neutral. CI runs this on a multi-core
# runner in the bench-scale job.
bench-scale-check:
	$(GO) run ./cmd/benchscale -check BENCH_scale.json

# Refresh the committed crash-recovery latency snapshot: checkpointed
# restart vs full genesis replay at a 10k-event journal history.
bench-recover:
	$(GO) run ./cmd/benchrecover -out BENCH_recover.json

# Fail when the checkpoint-over-genesis recovery speedup fell below 10x
# or regressed >25% against the committed BENCH_recover.json. Ratios, not
# absolute ns, so the gate is machine-neutral. CI runs this in the
# bench-smoke job.
bench-recover-check:
	$(GO) run ./cmd/benchrecover -check BENCH_recover.json

# Refresh the committed digital-twin quote snapshot: quote latency plus
# mutator latency with and without concurrent quote load.
bench-quote:
	$(GO) run ./cmd/benchquote -out BENCH_quote.json

# Fail when concurrent quotes inflate mutator latency beyond the
# allowance (isolation broke: a quote path took the scheduling lock).
# Ratios, not absolute ns, so the gate is machine-neutral. CI runs this
# in the bench-smoke job.
bench-quote-check:
	$(GO) run ./cmd/benchquote -check BENCH_quote.json

fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/swf/
	$(GO) test -fuzz=FuzzServeConn -fuzztime=30s ./internal/rms/
	$(GO) test -fuzz=FuzzJournalRecover -fuzztime=30s ./internal/rms/
	$(GO) test -fuzz=FuzzProfileVsReference -fuzztime=30s ./internal/profile/
	$(GO) test -fuzz=FuzzSpeculationDifferential -fuzztime=30s ./internal/sim/

# Reduced-scale reproduction of every table and figure (about 4 minutes).
repro:
	$(GO) run ./cmd/paper

# Paper-scale reproduction: 10 sets x 10,000 jobs (about 50 minutes).
repro-full:
	$(GO) run ./cmd/paper -full

ablations:
	$(GO) run ./cmd/paper -ablation all -shrinks 1.0,0.8

# Regenerate the committed golden outputs after an *intentional*
# behavioural change (reduced scale ~4 min, full scale ~50 min on one
# core). Refactors must leave both files byte-identical instead.
golden:
	$(GO) run ./cmd/paper > paper_output.txt
	$(GO) run ./cmd/paper -full > paper_output_full.txt

# Byte-compare a fresh reduced-scale run of cmd/paper against the
# committed golden output: any change to scheduling behaviour — however
# small — fails here. CI runs this on every push.
golden-check:
	$(GO) run ./cmd/paper > paper_output.check.txt
	cmp paper_output.check.txt paper_output.txt
	rm -f paper_output.check.txt

# Like golden-check, but with a custom policy and decider registered (and
# never selected): registration alone must not perturb a single byte of
# the paper pipeline. CI runs this next to golden-check.
golden-check-registered:
	$(GO) run ./cmd/paper -register-inactive > paper_output.check.txt
	cmp paper_output.check.txt paper_output.txt
	rm -f paper_output.check.txt

# Like golden-check, but with the speculative cross-event planning
# pipeline enabled in every dynP tuner — plain and with the inactive
# registrations: speculation is an execution detail that must not perturb
# a single byte of the paper pipeline. CI runs this next to golden-check.
golden-check-speculate:
	$(GO) run ./cmd/paper -speculate > paper_output.check.txt
	cmp paper_output.check.txt paper_output.txt
	$(GO) run ./cmd/paper -register-inactive -speculate > paper_output.check.txt
	cmp paper_output.check.txt paper_output.txt
	rm -f paper_output.check.txt

# Paper-scale variant of golden-check (~50 minutes; the CI workflow runs
# it on schedule and on manual dispatch rather than per push).
golden-check-full:
	$(GO) run ./cmd/paper -full > paper_output_full.check.txt
	cmp paper_output_full.check.txt paper_output_full.txt
	rm -f paper_output_full.check.txt

clean:
	$(GO) clean ./...
	rm -f paper_output.check.txt paper_output_full.check.txt
