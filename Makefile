# Development targets for the dynp reproduction. Everything is plain Go;
# the Makefile only bundles the common invocations.

GO ?= go

.PHONY: all build vet test race bench fuzz repro repro-full ablations clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent pieces (experiment worker pool, RMS server).
race:
	$(GO) test -race ./internal/experiment/ ./internal/rms/ .

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/swf/

# Reduced-scale reproduction of every table and figure (about 4 minutes).
repro:
	$(GO) run ./cmd/paper

# Paper-scale reproduction: 10 sets x 10,000 jobs (about 50 minutes).
repro-full:
	$(GO) run ./cmd/paper -full

ablations:
	$(GO) run ./cmd/paper -ablation all -shrinks 1.0,0.8

clean:
	$(GO) clean ./...
